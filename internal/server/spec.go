package server

import (
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"e9patch"
	"e9patch/internal/lang"
	"e9patch/internal/lowfat"
	"e9patch/internal/patch"
	"e9patch/internal/trampoline"
)

// Spec is the rewrite configuration of one request, normalised so that
// equivalent requests canonicalise to the same cache key. Parameters
// are read from query values or X-E9-* headers (header wins), mirroring
// cmd/e9tool's flags:
//
//	match       matcher expression, e.g. "jcc & short" (required
//	            unless a spec program is supplied)
//	action      empty | counter=ADDR | contextcall=ADDR | lowfat | lowfat-trap
//	spec        spec-language program (internal/lang): match/exclude/
//	            patch/payload directives. The query value carries the
//	            raw text; the X-E9-Spec header carries it base64
//	            (standard encoding). Exclusive with match/action.
//	payload     payload ELF for call patches, base64 in the query value
//	            or the X-E9-Payload header
//	granularity page-grouping granularity M (default 1, -1 disables)
//	skip        skip first N bytes of .text
//	disasm      instruction recovery mode: linear (default) | superset |
//	            superset-cet
//	disable-t1 / disable-t2 / disable-t3   tactic ablations
//	b0-fallback / force-b0                 int3 tactics
//	reserve     extra reserved VA ranges, "0xLO-0xHI", repeatable or
//	            comma-separated
//	parallelism worker goroutines for this rewrite, clamped to the
//	            server's pool size (default: the pool size)
type Spec struct {
	Match       string
	Action      string
	SpecText    string
	Payload     []byte
	Granularity int
	SkipPrefix  uint64
	Disasm      e9patch.DisasmMode
	DisableT1   bool
	DisableT2   bool
	DisableT3   bool
	B0Fallback  bool
	ForceB0     bool
	Reserve     [][2]uint64
	Parallelism int

	// built is the eagerly lowered spec program when SpecText is set,
	// so bad specs fail at parse time (422) and Config never re-parses.
	built *lang.BuildResult
}

// parseSpec extracts and validates the Spec of a rewrite request.
func parseSpec(r *http.Request) (*Spec, error) {
	q := r.URL.Query()
	get := func(name string) string {
		if v := r.Header.Get("X-E9-" + name); v != "" {
			return v
		}
		return q.Get(name)
	}
	getBool := func(name string) (bool, error) {
		v := get(name)
		if v == "" {
			return false, nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return false, fmt.Errorf("parameter %s: %w", name, err)
		}
		return b, nil
	}

	s := &Spec{Match: get("match"), Action: get("action"), Granularity: 1}
	s.SpecText = q.Get("spec")
	if h := r.Header.Get("X-E9-Spec"); h != "" {
		text, err := base64.StdEncoding.DecodeString(h)
		if err != nil {
			return nil, fmt.Errorf("header X-E9-Spec: %w", err)
		}
		s.SpecText = string(text)
	}
	for _, src := range []struct{ name, val string }{
		{"parameter payload", q.Get("payload")},
		{"header X-E9-Payload", r.Header.Get("X-E9-Payload")}, // header wins
	} {
		if src.val == "" {
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(src.val)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", src.name, err)
		}
		s.Payload = raw
	}
	switch {
	case s.SpecText != "" && (s.Match != "" || s.Action != ""):
		return nil, fmt.Errorf("parameter spec is exclusive with match/action")
	case s.SpecText == "" && s.Match == "":
		return nil, fmt.Errorf("parameter match or spec is required (e.g. ?match=jcc+%%26+short)")
	}
	if s.Action == "" {
		s.Action = "empty"
	}
	if v := get("granularity"); v != "" {
		g, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("parameter granularity: %w", err)
		}
		// Granularity sizes block allocations in the emit phase, so it
		// must not be client-controlled beyond a sane range: -1 disables
		// grouping, 1..MaxGranularity sets the block size in pages.
		if g == 0 || g < -1 || g > e9patch.MaxGranularity {
			return nil, fmt.Errorf("parameter granularity: want -1 or 1..%d, got %d", e9patch.MaxGranularity, g)
		}
		s.Granularity = g
	}
	if v := get("skip"); v != "" {
		sk, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter skip: %w", err)
		}
		s.SkipPrefix = sk
	}
	mode, err := e9patch.ParseDisasmMode(get("disasm"))
	if err != nil {
		return nil, fmt.Errorf("parameter disasm: %w", err)
	}
	s.Disasm = mode
	if s.DisableT1, err = getBool("disable-t1"); err != nil {
		return nil, err
	}
	if s.DisableT2, err = getBool("disable-t2"); err != nil {
		return nil, err
	}
	if s.DisableT3, err = getBool("disable-t3"); err != nil {
		return nil, err
	}
	if s.B0Fallback, err = getBool("b0-fallback"); err != nil {
		return nil, err
	}
	if s.ForceB0, err = getBool("force-b0"); err != nil {
		return nil, err
	}
	if v := get("parallelism"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("parameter parallelism: %w", err)
		}
		if p < 1 {
			return nil, fmt.Errorf("parameter parallelism: must be >= 1, got %d", p)
		}
		s.Parallelism = p
	}

	ranges := q["reserve"]
	if h := r.Header.Get("X-E9-Reserve"); h != "" {
		ranges = append(ranges, h)
	}
	for _, rv := range ranges {
		for _, one := range strings.Split(rv, ",") {
			one = strings.TrimSpace(one)
			if one == "" {
				continue
			}
			lo, hi, ok := strings.Cut(one, "-")
			if !ok {
				return nil, fmt.Errorf("parameter reserve: want 0xLO-0xHI, got %q", one)
			}
			l, err := strconv.ParseUint(strings.TrimSpace(lo), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("parameter reserve: %w", err)
			}
			h, err := strconv.ParseUint(strings.TrimSpace(hi), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("parameter reserve: %w", err)
			}
			if h <= l {
				return nil, fmt.Errorf("parameter reserve: empty range %q", one)
			}
			s.Reserve = append(s.Reserve, [2]uint64{l, h})
		}
	}
	sort.Slice(s.Reserve, func(a, b int) bool {
		if s.Reserve[a][0] != s.Reserve[b][0] {
			return s.Reserve[a][0] < s.Reserve[b][0]
		}
		return s.Reserve[a][1] < s.Reserve[b][1]
	})

	// Validate eagerly so bad requests fail before queueing: spec
	// programs that fail to parse or typecheck surface as ErrBadSpec
	// (mapped to 422 with the line:column position), everything else
	// as 400.
	if s.SpecText != "" {
		sp, err := lang.ParseSpec(s.SpecText)
		if err != nil {
			return nil, err
		}
		if s.built, err = sp.Build(s.Payload); err != nil {
			return nil, err
		}
	} else {
		if _, err := e9patch.SelectMatch(s.Match); err != nil {
			return nil, err
		}
		if _, err := s.template(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Canonical renders the spec as a stable string: fixed field order,
// normalised defaults, sorted reserve ranges. Note the matcher
// expression itself is embedded verbatim — "jcc&short" and
// "jcc & short" are distinct keys even though they compile to the same
// predicate; canonicalisation covers parameters, not expression
// algebra.
//
// Parallelism is deliberately excluded: the rewrite output is
// byte-identical at every worker count, so requests differing only in
// parallelism share one cache entry.
func (s *Spec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "match=%s|action=%s|M=%d|skip=%d|disasm=%s|t1=%t|t2=%t|t3=%t|b0=%t|forceb0=%t",
		s.Match, s.Action, s.Granularity, s.SkipPrefix, s.Disasm,
		!s.DisableT1, !s.DisableT2, !s.DisableT3, s.B0Fallback, s.ForceB0)
	for _, r := range s.Reserve {
		fmt.Fprintf(&b, "|reserve=%#x-%#x", r[0], r[1])
	}
	// Spec programs and their payloads fold into the key as content
	// hashes (the program can be kilobytes, the payload megabytes);
	// both cache tiers inherit the distinction automatically.
	if s.SpecText != "" {
		hs := sha256.Sum256([]byte(s.SpecText))
		hp := sha256.Sum256(s.Payload)
		fmt.Fprintf(&b, "|spec=%x|payload=%x", hs, hp)
	}
	return b.String()
}

// template resolves the action string to a trampoline template and any
// extra reserved ranges it needs.
func (s *Spec) template() (e9patch.Template, error) {
	switch {
	case s.Action == "empty":
		return trampoline.Empty{}, nil
	case strings.HasPrefix(s.Action, "counter="):
		addr, err := strconv.ParseUint(s.Action[len("counter="):], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("action counter: %w", err)
		}
		return trampoline.Counter{Addr: addr}, nil
	case strings.HasPrefix(s.Action, "contextcall="):
		addr, err := strconv.ParseUint(s.Action[len("contextcall="):], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("action contextcall: %w", err)
		}
		return trampoline.ContextCall{Fn: addr}, nil
	case s.Action == "lowfat":
		return lowfat.CheckTemplate{}, nil
	case s.Action == "lowfat-trap":
		return lowfat.CheckTemplate{Trap: true}, nil
	default:
		return nil, fmt.Errorf("unknown action %q", s.Action)
	}
}

// Config builds the e9patch.Config the spec describes.
func (s *Spec) Config() (e9patch.Config, error) {
	cfg := e9patch.Config{
		Granularity: s.Granularity,
		SkipPrefix:  s.SkipPrefix,
		Disasm:      s.Disasm,
		Parallelism: s.Parallelism,
		Patch: patch.Options{
			DisableT1:  s.DisableT1,
			DisableT2:  s.DisableT2,
			DisableT3:  s.DisableT3,
			B0Fallback: s.B0Fallback,
			ForceB0:    s.ForceB0,
		},
	}
	for _, r := range s.Reserve {
		cfg.ReserveVA = append(cfg.ReserveVA, r)
	}
	if s.built != nil {
		cfg.Select = s.built.Select
		cfg.Template = s.built.Template
		cfg.Inject = s.built.Inject
		cfg.ReserveVA = append(cfg.ReserveVA, s.built.ReserveVA...)
		return cfg, nil
	}
	sel, err := e9patch.SelectMatch(s.Match)
	if err != nil {
		return e9patch.Config{}, err
	}
	tmpl, err := s.template()
	if err != nil {
		return e9patch.Config{}, err
	}
	cfg.Select = sel
	cfg.Template = tmpl
	if strings.HasPrefix(s.Action, "lowfat") {
		cfg.ReserveVA = append(cfg.ReserveVA, lowfat.ReserveVA()...)
	}
	return cfg, nil
}
