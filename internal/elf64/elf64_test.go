package elf64

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T, pie bool, bss uint64) []byte {
	t.Helper()
	text := bytes.Repeat([]byte{0x90}, 100)
	text[99] = 0xC3
	data := []byte("hello data")
	out, err := Build(BuildSpec{
		PIE:      pie,
		Text:     text,
		EntryOff: 4,
		Data:     data,
		BSSSize:  bss,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuildParseRoundTrip(t *testing.T) {
	for _, pie := range []bool{false, true} {
		raw := buildSample(t, pie, 0x2000)
		f, err := Parse(raw)
		if err != nil {
			t.Fatalf("pie=%v: %v", pie, err)
		}
		if f.IsPIE() != pie {
			t.Errorf("IsPIE = %v, want %v", f.IsPIE(), pie)
		}
		text, addr, err := f.Text()
		if err != nil {
			t.Fatal(err)
		}
		if len(text) != 100 {
			t.Errorf("text size = %d", len(text))
		}
		wantBase := uint64(DefaultBase)
		if pie {
			wantBase = 0
		}
		if addr != wantBase+TextVaddrOff {
			t.Errorf("text addr = %#x", addr)
		}
		if f.Header.Entry != addr+4 {
			t.Errorf("entry = %#x, want %#x", f.Header.Entry, addr+4)
		}
		if text[99] != 0xC3 {
			t.Error("text contents corrupted")
		}

		// Sections present and named.
		for _, name := range []string{".text", ".data", ".bss", ".shstrtab"} {
			if _, ok := f.SectionByName(name); !ok {
				t.Errorf("missing section %q", name)
			}
		}
		bssSec, _ := f.SectionByName(".bss")
		if bssSec.Size != 0x2000 {
			t.Errorf("bss size = %#x", bssSec.Size)
		}

		// LoadBounds covers text through bss.
		lo, hi := f.LoadBounds()
		if lo != wantBase {
			t.Errorf("load lo = %#x", lo)
		}
		dataSec, _ := f.SectionByName(".data")
		if want := dataSec.Addr + dataSec.Size + 0x2000; hi != want {
			t.Errorf("load hi = %#x, want %#x", hi, want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(BuildSpec{}); err == nil {
		t.Error("empty text accepted")
	}
	if _, err := Build(BuildSpec{Text: []byte{0x90}, EntryOff: 5}); err == nil {
		t.Error("out-of-range entry accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Parse([]byte("not an elf file at all....")); err == nil {
		t.Error("bad magic accepted")
	}
	raw := buildSample(t, false, 0)
	raw[4] = 1 // ELFCLASS32
	if _, err := Parse(raw); err == nil {
		t.Error("ELFCLASS32 accepted")
	}
}

func TestPatchBytes(t *testing.T) {
	raw := buildSample(t, false, 0)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, addr, _ := f.Text()
	if err := f.PatchBytes(addr+10, []byte{0xE9, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	text, _, _ := f.Text()
	if text[10] != 0xE9 || text[14] != 4 {
		t.Error("patch not applied in place")
	}
	// Patching .bss (not file-backed) must fail.
	bss, _ := f.SectionByName(".bss")
	_ = bss
	if err := f.PatchBytes(0xdeadbeef000, []byte{1}); err == nil {
		t.Error("unmapped patch accepted")
	}
}

func TestVaddrToOff(t *testing.T) {
	raw := buildSample(t, false, 0x1000)
	f, _ := Parse(raw)
	_, addr, _ := f.Text()
	off, ok := f.VaddrToOff(addr)
	if !ok || off != PageSize {
		t.Errorf("text vaddr -> off %#x ok=%v", off, ok)
	}
	// .bss addresses are not file-backed.
	bss, _ := f.SectionByName(".bss")
	if _, ok := f.VaddrToOff(bss.Addr + 0x10); ok {
		t.Error("bss vaddr reported file-backed")
	}
}

func TestAppendRoundTrip(t *testing.T) {
	raw := buildSample(t, false, 0)
	blob := []byte("trampoline pages and mmap table")
	out := Append(raw, blob)

	// The original prefix is untouched.
	if !bytes.Equal(out[:len(raw)], raw) {
		t.Fatal("append modified original bytes")
	}
	got, ok := AppendedBlob(out)
	if !ok {
		t.Fatal("blob not found")
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob = %q", got)
	}
	// The appended file still parses.
	if _, err := Parse(out); err != nil {
		t.Fatal(err)
	}
	// Files without a trailer report no blob.
	if _, ok := AppendedBlob(raw); ok {
		t.Error("phantom blob found")
	}
}

func TestAppendProperty(t *testing.T) {
	f := func(blob []byte, pad uint8) bool {
		base := buildSample(t, false, 0)
		// Vary the base length so alignment paths are exercised.
		base = append(base, bytes.Repeat([]byte{0xAA}, int(pad))...)
		out := Append(base, blob)
		got, ok := AppendedBlob(out)
		return ok && bytes.Equal(got, blob) && bytes.Equal(out[:len(base)], base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
