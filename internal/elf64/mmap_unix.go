//go:build linux || darwin || freebsd || netbsd || openbsd

package elf64

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: the kernel pages
// the file in on demand and the bytes never occupy the Go heap.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if int64(int(size)) != size {
		return nil, syscall.EOVERFLOW
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping made by mmapFile.
func munmapFile(m []byte) error { return syscall.Munmap(m) }
