package elf64

import (
	"e9patch/internal/e9err"
)

// symSize is the size of one Elf64_Sym entry.
const symSize = 24

// Sym is a global function symbol: the subset of Elf64_Sym the spec
// language needs to locate patch functions inside payload ELFs.
type Sym struct {
	// Name is the symbol name.
	Name string
	// Addr is the symbol's absolute virtual address.
	Addr uint64
	// Size is the symbol size in bytes (0 when unknown).
	Size uint64
}

// Symbols parses the file's .symtab/.strtab pair and returns the
// defined entries (the null entry and nameless symbols are skipped).
// A file without a symbol table returns ErrUnsupported — for payload
// ELFs that means "link the payload with its patch functions global".
func (f *File) Symbols() ([]Sym, error) {
	var symtab *Section
	for i := range f.Sections {
		if f.Sections[i].Type == SHTSymtab {
			symtab = &f.Sections[i]
			break
		}
	}
	if symtab == nil {
		return nil, e9err.Unsupported("parse", "elf64: no symbol table")
	}
	if symtab.Entsize != 0 && symtab.Entsize != symSize {
		return nil, e9err.Malformed("parse", "elf64: symtab entsize %d (want %d)", symtab.Entsize, symSize)
	}
	if !spanInside(symtab.Off, symtab.Size, uint64(len(f.Data))) {
		return nil, e9err.MalformedAt("parse", symtab.Off, "elf64: symtab overruns file")
	}
	if int(symtab.Link) >= len(f.Sections) {
		return nil, e9err.Malformed("parse", "elf64: symtab string table link %d out of range", symtab.Link)
	}
	str := f.Sections[symtab.Link]
	if str.Type != SHTStrtab {
		return nil, e9err.Malformed("parse", "elf64: symtab links section %d, not a string table", symtab.Link)
	}
	if !spanInside(str.Off, str.Size, uint64(len(f.Data))) {
		return nil, e9err.MalformedAt("parse", str.Off, "elf64: symbol string table overruns file")
	}
	strs := f.Data[str.Off : str.Off+str.Size]

	count := symtab.Size / symSize
	var out []Sym
	for i := uint64(1); i < count; i++ {
		e := f.Data[symtab.Off+i*symSize:]
		nameOff := le.Uint32(e)
		if nameOff == 0 || uint64(nameOff) >= uint64(len(strs)) {
			continue
		}
		out = append(out, Sym{
			Name: cstr(strs, nameOff),
			Addr: le.Uint64(e[8:]),
			Size: le.Uint64(e[16:]),
		})
	}
	return out, nil
}

// writeSym encodes one global STT_FUNC symbol in .text (shndx 1).
func writeSym(buf []byte, nameOff uint32, s *Sym) {
	le.PutUint32(buf, nameOff)
	buf[4] = 0x12 // STB_GLOBAL << 4 | STT_FUNC
	buf[5] = 0    // STV_DEFAULT
	le.PutUint16(buf[6:], 1)
	le.PutUint64(buf[8:], s.Addr)
	le.PutUint64(buf[16:], s.Size)
}
