package elf64

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenInputMmapAndFallback checks both load paths return identical
// bytes and that Close is safe on each.
func TestOpenInputMmapAndFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.bin")
	want := make([]byte, 3*PageSize+123)
	for i := range want {
		want[i] = byte(i * 31)
	}
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}

	mapped, err := OpenInput(path)
	if err != nil {
		t.Fatalf("OpenInput (mmap): %v", err)
	}
	defer mapped.Close()

	prev := SetMmapDisabledForTesting(true)
	defer SetMmapDisabledForTesting(prev)
	read, err := OpenInput(path)
	if err != nil {
		t.Fatalf("OpenInput (fallback): %v", err)
	}
	defer read.Close()

	if read.Mapped {
		t.Fatal("fallback path reported Mapped")
	}
	if !bytes.Equal(mapped.Data, want) || !bytes.Equal(read.Data, want) {
		t.Fatal("loaded bytes differ from file contents")
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("Close (mmap): %v", err)
	}
	if mapped.Data != nil {
		t.Fatal("Data survives Close on the mmap path")
	}
	if err := read.Close(); err != nil {
		t.Fatalf("Close (fallback): %v", err)
	}
}

// TestOpenInputEmptyAndMissing covers the degenerate cases: an empty
// file loads (fallback; zero-length maps are pointless) and a missing
// path is a classified error.
func TestOpenInputEmptyAndMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := OpenInput(path)
	if err != nil {
		t.Fatalf("OpenInput (empty): %v", err)
	}
	if len(in.Data) != 0 || in.Mapped {
		t.Fatalf("empty file: got %d bytes, mapped=%v", len(in.Data), in.Mapped)
	}
	in.Close()

	if _, err := OpenInput(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file: want error")
	}
}

// TestComposeMatchesPatchPlusAppend proves the single-allocation
// compose path is byte-identical to the mutate-then-append reference.
func TestComposeMatchesPatchPlusAppend(t *testing.T) {
	text := bytes.Repeat([]byte{0x90}, 600)
	raw, err := Build(BuildSpec{Text: text, Data: []byte("data"), BSSSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(append([]byte(nil), raw...))
	if err != nil {
		t.Fatal(err)
	}
	off, addr, size, err := f.TextRange()
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, size)
	for i := range code {
		code[i] = byte(i ^ 0x5A)
	}
	blob := []byte("loader blob payload")

	// Reference: mutate a private copy in place, then append.
	if err := f.PatchBytes(addr, code); err != nil {
		t.Fatal(err)
	}
	want := Append(f.Data, blob)

	got := Compose(raw, off, code, blob)
	if !bytes.Equal(got, want) {
		t.Fatalf("Compose diverges from PatchBytes+Append (%d vs %d bytes)", len(got), len(want))
	}
	// Compose must not have touched the original file bytes.
	if !bytes.Equal(raw[off:off+size], text) {
		t.Fatal("Compose mutated its input")
	}
}
