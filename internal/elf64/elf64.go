// Package elf64 implements a from-scratch ELF64 object reader, writer
// and builder for x86-64 executables and shared objects.
//
// The package supports exactly what static binary rewriting needs:
// parsing headers/segments/sections, patching segment bytes strictly
// in place, and appending new data at end-of-file without moving any
// existing bytes (the paper's §5.1 rewriting discipline). It also
// *builds* synthetic executables, which serve as rewriting targets for
// the evaluation harness.
package elf64

import (
	"encoding/binary"
	"fmt"
	"sort"

	"e9patch/internal/e9err"
)

// ELF constants (the subset relevant to x86-64 Linux binaries).
const (
	ClassELF64 = 2
	Data2LSB   = 1
	EVCurrent  = 1

	// Object file types.
	TypeExec = 2 // ET_EXEC: fixed-address executable (non-PIE)
	TypeDyn  = 3 // ET_DYN: shared object or PIE executable

	MachineX86_64 = 62

	// Program header types.
	PTLoad     = 1
	PTDynamic  = 2
	PTInterp   = 3
	PTNote     = 4
	PTPhdr     = 6
	PTGnuStack = 0x6474e551

	// Program header flags.
	PFX = 1
	PFW = 2
	PFR = 4

	// Section header types.
	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTNobits   = 8

	// Section flags.
	SHFWrite     = 1
	SHFAlloc     = 2
	SHFExecinstr = 4

	// PageSize is the assumed page size for segment alignment.
	PageSize = 0x1000

	ehdrSize = 64
	phdrSize = 56
	shdrSize = 64
)

// Errors returned by the parser. All three classify under the e9err
// taxonomy (ErrNotELF and ErrTruncated as malformed input,
// ErrUnsupported as unsupported input), so errors.Is works against
// both the local sentinel and the class.
var (
	ErrNotELF      error = e9err.Malformed("parse", "elf64: bad magic")
	ErrTruncated   error = e9err.Malformed("parse", "elf64: truncated file")
	ErrUnsupported error = e9err.Unsupported("parse", "elf64: unsupported ELF variant")
)

// Header mirrors the ELF64 file header.
type Header struct {
	Type     uint16
	Machine  uint16
	Entry    uint64
	PhOff    uint64
	ShOff    uint64
	Flags    uint32
	PhNum    uint16
	ShNum    uint16
	ShStrNdx uint16
}

// Prog mirrors an ELF64 program header.
type Prog struct {
	Type   uint32
	Flags  uint32
	Off    uint64
	Vaddr  uint64
	Paddr  uint64
	Filesz uint64
	Memsz  uint64
	Align  uint64
}

// Section mirrors an ELF64 section header plus its resolved name.
type Section struct {
	Name      string
	NameOff   uint32
	Type      uint32
	Flags     uint64
	Addr      uint64
	Off       uint64
	Size      uint64
	Link      uint32
	Info      uint32
	Addralign uint64
	Entsize   uint64
}

// File is a parsed ELF image. Data aliases the raw file contents;
// in-place patches through Data are the intended mutation mechanism.
type File struct {
	Header   Header
	Progs    []Prog
	Sections []Section
	Data     []byte
}

var le = binary.LittleEndian

// Parse reads an ELF64 little-endian x86-64 file.
func Parse(data []byte) (*File, error) {
	if len(data) < ehdrSize {
		return nil, ErrTruncated
	}
	if data[0] != 0x7F || data[1] != 'E' || data[2] != 'L' || data[3] != 'F' {
		return nil, ErrNotELF
	}
	if data[4] != ClassELF64 {
		return nil, fmt.Errorf("%w: class %d", ErrUnsupported, data[4])
	}
	if data[5] != Data2LSB {
		return nil, fmt.Errorf("%w: byte order %d", ErrUnsupported, data[5])
	}

	f := &File{Data: data}
	h := &f.Header
	h.Type = le.Uint16(data[16:])
	h.Machine = le.Uint16(data[18:])
	h.Entry = le.Uint64(data[24:])
	h.PhOff = le.Uint64(data[32:])
	h.ShOff = le.Uint64(data[40:])
	h.Flags = le.Uint32(data[48:])
	h.PhNum = le.Uint16(data[56:])
	h.ShNum = le.Uint16(data[60:])
	h.ShStrNdx = le.Uint16(data[62:])

	if h.Machine != MachineX86_64 {
		return nil, fmt.Errorf("%w: machine %d", ErrUnsupported, h.Machine)
	}

	// Program headers. The bound check must be overflow-safe: a hostile
	// PhOff near 2^64 would wrap PhOff+PhNum*56 back below len(data) and
	// send the loop indexing past the slice.
	if h.PhNum > 0 && !spanInside(h.PhOff, uint64(h.PhNum)*phdrSize, uint64(len(data))) {
		return nil, fmt.Errorf("%w: program headers", ErrTruncated)
	}
	for i := 0; i < int(h.PhNum); i++ {
		p := data[h.PhOff+uint64(i)*phdrSize:]
		f.Progs = append(f.Progs, Prog{
			Type:   le.Uint32(p[0:]),
			Flags:  le.Uint32(p[4:]),
			Off:    le.Uint64(p[8:]),
			Vaddr:  le.Uint64(p[16:]),
			Paddr:  le.Uint64(p[24:]),
			Filesz: le.Uint64(p[32:]),
			Memsz:  le.Uint64(p[40:]),
			Align:  le.Uint64(p[48:]),
		})
	}

	// Section headers (optional: stripped binaries may omit them).
	if h.ShOff != 0 && h.ShNum > 0 {
		if !spanInside(h.ShOff, uint64(h.ShNum)*shdrSize, uint64(len(data))) {
			return nil, fmt.Errorf("%w: section headers", ErrTruncated)
		}
		raw := make([]Section, h.ShNum)
		for i := 0; i < int(h.ShNum); i++ {
			sh := data[h.ShOff+uint64(i)*shdrSize:]
			raw[i] = Section{
				NameOff:   le.Uint32(sh[0:]),
				Type:      le.Uint32(sh[4:]),
				Flags:     le.Uint64(sh[8:]),
				Addr:      le.Uint64(sh[16:]),
				Off:       le.Uint64(sh[24:]),
				Size:      le.Uint64(sh[32:]),
				Link:      le.Uint32(sh[40:]),
				Info:      le.Uint32(sh[44:]),
				Addralign: le.Uint64(sh[48:]),
				Entsize:   le.Uint64(sh[56:]),
			}
		}
		// Resolve names from the section-name string table.
		if int(h.ShStrNdx) < len(raw) {
			str := raw[h.ShStrNdx]
			if spanInside(str.Off, str.Size, uint64(len(data))) {
				tab := data[str.Off : str.Off+str.Size]
				for i := range raw {
					raw[i].Name = cstr(tab, raw[i].NameOff)
				}
			}
		}
		f.Sections = raw
	}

	// Loadable segments must be internally consistent: file-backed bytes
	// inside the file, memory size covering the file size, and no
	// address wrap-around. Downstream phases (address-space reservation,
	// patching, the loader) all assume these invariants.
	for i := range f.Progs {
		p := &f.Progs[i]
		if p.Type != PTLoad {
			continue
		}
		if p.Filesz > 0 && !spanInside(p.Off, p.Filesz, uint64(len(data))) {
			return nil, fmt.Errorf("%w: PT_LOAD[%d] file bytes [%#x,+%#x) overrun file",
				ErrTruncated, i, p.Off, p.Filesz)
		}
		if p.Memsz < p.Filesz {
			return nil, e9err.MalformedAt("parse", p.Vaddr,
				"elf64: PT_LOAD[%d] memsz %#x < filesz %#x", i, p.Memsz, p.Filesz)
		}
		if p.Vaddr+p.Memsz < p.Vaddr {
			return nil, e9err.MalformedAt("parse", p.Vaddr,
				"elf64: PT_LOAD[%d] wraps the address space (memsz %#x)", i, p.Memsz)
		}
	}
	return f, nil
}

// spanInside reports whether [off, off+size) lies inside [0, limit)
// without overflowing: the form off <= limit && size <= limit-off is
// safe for any uint64 inputs, unlike off+size <= limit.
func spanInside(off, size, limit uint64) bool {
	return off <= limit && size <= limit-off
}

func cstr(tab []byte, off uint32) string {
	if int(off) >= len(tab) {
		return ""
	}
	end := int(off)
	for end < len(tab) && tab[end] != 0 {
		end++
	}
	return string(tab[off:end])
}

// SectionByName returns the named section.
func (f *File) SectionByName(name string) (*Section, bool) {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i], true
		}
	}
	return nil, false
}

// Text returns the .text section contents and virtual address.
func (f *File) Text() (data []byte, addr uint64, err error) {
	off, addr, size, err := f.TextRange()
	if err != nil {
		return nil, 0, err
	}
	return f.Data[off : off+size], addr, nil
}

// ExecSpan describes one executable byte range of the file: its file
// offset, link-time virtual address, size, and the section it came
// from ("" when the span was derived from a program header).
type ExecSpan struct {
	Name string
	Off  uint64
	Addr uint64
	Size uint64
}

// ExecSpans enumerates the executable code ranges of the binary in
// ascending address order: one span per allocated SHF_EXECINSTR
// progbits section when section headers are present (.text, .init,
// .plt, …), otherwise one per executable PT_LOAD segment — stripped
// binaries lose their section table but never their program headers.
// Every span is validated against the file bounds, so callers may
// slice f.Data with it directly.
func (f *File) ExecSpans() ([]ExecSpan, error) {
	var out []ExecSpan
	for i := range f.Sections {
		s := &f.Sections[i]
		if s.Type != SHTProgbits || s.Flags&SHFExecinstr == 0 || s.Flags&SHFAlloc == 0 || s.Size == 0 {
			continue
		}
		if !spanInside(s.Off, s.Size, uint64(len(f.Data))) {
			return nil, fmt.Errorf("%w: section %s [%#x,+%#x) overruns file", ErrTruncated, s.Name, s.Off, s.Size)
		}
		out = append(out, ExecSpan{Name: s.Name, Off: s.Off, Addr: s.Addr, Size: s.Size})
	}
	if len(out) == 0 {
		for i := range f.Progs {
			p := &f.Progs[i]
			if p.Type != PTLoad || p.Flags&PFX == 0 || p.Filesz == 0 {
				continue
			}
			// Parse already bounds-checked PT_LOAD file bytes.
			out = append(out, ExecSpan{Off: p.Off, Addr: p.Vaddr, Size: p.Filesz})
		}
	}
	if len(out) == 0 {
		return nil, e9err.Unsupported("parse", "elf64: no executable sections or segments")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out, nil
}

// TextRange returns the file offset, virtual address and size of the
// primary code range, validated against the file bounds: the .text
// section when one exists, otherwise the largest executable span —
// shared objects and stripped binaries are first-class inputs, not
// parse errors. Callers that must not mutate f.Data (the zero-copy
// paths) use the offset to overlay a patched text image while
// composing the output.
func (f *File) TextRange() (off, addr, size uint64, err error) {
	if s, ok := f.SectionByName(".text"); ok {
		if !spanInside(s.Off, s.Size, uint64(len(f.Data))) {
			return 0, 0, 0, fmt.Errorf("%w: .text [%#x,+%#x) overruns file", ErrTruncated, s.Off, s.Size)
		}
		return s.Off, s.Addr, s.Size, nil
	}
	spans, err := f.ExecSpans()
	if err != nil {
		return 0, 0, 0, err
	}
	best := spans[0]
	for _, sp := range spans[1:] {
		if sp.Size > best.Size {
			best = sp
		}
	}
	return best.Off, best.Addr, best.Size, nil
}

// IsPIE reports whether the file is position independent (ET_DYN).
func (f *File) IsPIE() bool { return f.Header.Type == TypeDyn }

// IsDSO reports whether the file looks like a plain shared library
// rather than a PIE executable: position independent with no entry
// point. (Both are ET_DYN; the zero entry is the conventional
// distinction and is exactly what our synthetic .so workloads emit.)
func (f *File) IsDSO() bool { return f.Header.Type == TypeDyn && f.Header.Entry == 0 }

// VaddrToOff translates a virtual address to a file offset through the
// PT_LOAD segments.
func (f *File) VaddrToOff(vaddr uint64) (uint64, bool) {
	for _, p := range f.Progs {
		if p.Type != PTLoad {
			continue
		}
		// vaddr-p.Vaddr < p.Filesz is the overflow-safe form of the
		// half-open range test (Parse validated Off+Filesz already).
		if vaddr >= p.Vaddr && vaddr-p.Vaddr < p.Filesz {
			return p.Off + (vaddr - p.Vaddr), true
		}
	}
	return 0, false
}

// PatchBytes overwrites len(b) bytes at the given virtual address,
// strictly in place. It fails if the address is not file-backed.
func (f *File) PatchBytes(vaddr uint64, b []byte) error {
	off, ok := f.VaddrToOff(vaddr)
	if !ok {
		return e9err.MalformedAt("emit", vaddr, "elf64: vaddr not mapped from file")
	}
	if !spanInside(off, uint64(len(b)), uint64(len(f.Data))) {
		return e9err.MalformedAt("emit", vaddr, "elf64: patch of %d bytes overruns file", len(b))
	}
	copy(f.Data[off:], b)
	return nil
}

// LoadBounds returns the lowest and highest virtual addresses covered
// by PT_LOAD segments (memsz, i.e. including .bss).
func (f *File) LoadBounds() (lo, hi uint64) {
	lo = ^uint64(0)
	for _, p := range f.Progs {
		if p.Type != PTLoad {
			continue
		}
		if p.Vaddr < lo {
			lo = p.Vaddr
		}
		if end := p.Vaddr + p.Memsz; end > hi {
			hi = end
		}
	}
	if lo == ^uint64(0) {
		lo = 0
	}
	return lo, hi
}

func writeEhdr(buf []byte, h *Header) {
	copy(buf, []byte{0x7F, 'E', 'L', 'F', ClassELF64, Data2LSB, EVCurrent})
	le.PutUint16(buf[16:], h.Type)
	le.PutUint16(buf[18:], h.Machine)
	le.PutUint32(buf[20:], EVCurrent)
	le.PutUint64(buf[24:], h.Entry)
	le.PutUint64(buf[32:], h.PhOff)
	le.PutUint64(buf[40:], h.ShOff)
	le.PutUint32(buf[48:], h.Flags)
	le.PutUint16(buf[52:], ehdrSize)
	le.PutUint16(buf[54:], phdrSize)
	le.PutUint16(buf[56:], h.PhNum)
	le.PutUint16(buf[58:], shdrSize)
	le.PutUint16(buf[60:], h.ShNum)
	le.PutUint16(buf[62:], h.ShStrNdx)
}

func writePhdr(buf []byte, p *Prog) {
	le.PutUint32(buf[0:], p.Type)
	le.PutUint32(buf[4:], p.Flags)
	le.PutUint64(buf[8:], p.Off)
	le.PutUint64(buf[16:], p.Vaddr)
	le.PutUint64(buf[24:], p.Paddr)
	le.PutUint64(buf[32:], p.Filesz)
	le.PutUint64(buf[40:], p.Memsz)
	le.PutUint64(buf[48:], p.Align)
}

func writeShdr(buf []byte, s *Section) {
	le.PutUint32(buf[0:], s.NameOff)
	le.PutUint32(buf[4:], s.Type)
	le.PutUint64(buf[8:], s.Flags)
	le.PutUint64(buf[16:], s.Addr)
	le.PutUint64(buf[24:], s.Off)
	le.PutUint64(buf[32:], s.Size)
	le.PutUint32(buf[40:], s.Link)
	le.PutUint32(buf[44:], s.Info)
	le.PutUint64(buf[48:], s.Addralign)
	le.PutUint64(buf[56:], s.Entsize)
}
