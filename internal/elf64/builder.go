package elf64

import (
	"errors"
	"fmt"
)

// BuildSpec describes a synthetic executable or shared object to build.
type BuildSpec struct {
	// PIE selects ET_DYN with a zero link base; otherwise ET_EXEC at
	// Base (default 0x400000).
	PIE bool
	// Shared builds a plain shared object: ET_DYN (PIE layout is
	// implied) with a zero entry point, the conventional .so shape.
	Shared bool
	// Base is the link base address for non-PIE binaries.
	Base uint64
	// Text is the .text machine code.
	Text []byte
	// EntryOff is the entry point offset within .text (ignored for
	// Shared objects, whose entry is 0).
	EntryOff uint64
	// Init, when non-empty, adds a second executable region: an .init
	// section carried by its own RX PT_LOAD segment between text and
	// data — the multi-exec-segment geometry real binaries have
	// (.init/.plt/.text) in miniature.
	Init []byte
	// Data is the initialised .data contents.
	Data []byte
	// BSSSize is the size of the zero-initialised .bss after .data.
	BSSSize uint64
	// Symbols, when non-empty, adds a .symtab/.strtab pair exposing
	// the entries as global function symbols — how spec-language
	// payloads name their patch functions. Addresses are absolute.
	Symbols []Sym
}

// DefaultBase is the traditional ld non-PIE link base.
const DefaultBase = 0x400000

// TextVaddrOff is the offset of .text above the link base.
const TextVaddrOff = PageSize

// Build assembles a minimal static ELF64 binary: headers, an RX text
// segment, an RW data segment with optional .bss, section headers and
// a section-name string table.
func Build(spec BuildSpec) ([]byte, error) {
	if len(spec.Text) == 0 {
		return nil, errors.New("elf64: empty .text")
	}
	if spec.EntryOff >= uint64(len(spec.Text)) {
		return nil, fmt.Errorf("elf64: entry offset %#x outside .text", spec.EntryOff)
	}
	pie := spec.PIE || spec.Shared
	base := spec.Base
	if pie {
		base = 0
	} else if base == 0 {
		base = DefaultBase
	}

	textOff := uint64(PageSize)
	textAddr := base + TextVaddrOff
	textEnd := textOff + uint64(len(spec.Text))

	haveInit := len(spec.Init) > 0
	var initOff, initAddr uint64
	initEnd := textEnd
	if haveInit {
		initOff = alignUp(textEnd, PageSize)
		initAddr = base + initOff
		initEnd = initOff + uint64(len(spec.Init))
	}

	dataOff := alignUp(initEnd, PageSize)
	dataAddr := base + dataOff
	dataEnd := dataOff + uint64(len(spec.Data))

	strtab := []byte("\x00.text\x00.data\x00.bss\x00.shstrtab\x00")
	nameText := uint32(1)
	nameData := uint32(7)
	nameBSS := uint32(13)
	nameShstr := uint32(18)
	var nameInit uint32
	if haveInit {
		nameInit = uint32(len(strtab))
		strtab = append(strtab, ".init\x00"...)
	}

	// The symbol table is appended after .data; without symbols the
	// layout (and every byte) is identical to the symbol-free format.
	haveSyms := len(spec.Symbols) > 0
	var nameSymtab, nameStrtab uint32
	var symOff, symSize64, symStrOff uint64
	var symStrs []byte
	if haveSyms {
		nameSymtab = uint32(len(strtab))
		strtab = append(strtab, ".symtab\x00"...)
		nameStrtab = uint32(len(strtab))
		strtab = append(strtab, ".strtab\x00"...)
		symOff = alignUp(dataEnd, 8)
		symSize64 = uint64(1+len(spec.Symbols)) * symSize
		symStrOff = symOff + symSize64
		symStrs = []byte{0}
		for i := range spec.Symbols {
			symStrs = append(symStrs, spec.Symbols[i].Name...)
			symStrs = append(symStrs, 0)
		}
	}

	strtabOff := alignUp(dataEnd, 16)
	if haveSyms {
		strtabOff = alignUp(symStrOff+uint64(len(symStrs)), 16)
	}
	shOff := alignUp(strtabOff+uint64(len(strtab)), 8)

	shNum := uint64(5)
	if haveInit {
		shNum++
	}
	if haveSyms {
		shNum += 2
	}
	total := shOff + shNum*shdrSize
	out := make([]byte, total)

	fileType := uint16(TypeExec)
	if pie {
		fileType = TypeDyn
	}

	progs := []Prog{
		{
			Type: PTLoad, Flags: PFR | PFX,
			Off: 0, Vaddr: base, Paddr: base,
			Filesz: textEnd, Memsz: textEnd, Align: PageSize,
		},
	}
	if haveInit {
		progs = append(progs, Prog{
			Type: PTLoad, Flags: PFR | PFX,
			Off: initOff, Vaddr: initAddr, Paddr: initAddr,
			Filesz: uint64(len(spec.Init)), Memsz: uint64(len(spec.Init)),
			Align: PageSize,
		})
	}
	progs = append(progs,
		Prog{
			Type: PTLoad, Flags: PFR | PFW,
			Off: dataOff, Vaddr: dataAddr, Paddr: dataAddr,
			Filesz: uint64(len(spec.Data)),
			Memsz:  uint64(len(spec.Data)) + spec.BSSSize,
			Align:  PageSize,
		},
		Prog{Type: PTGnuStack, Flags: PFR | PFW, Align: 16})

	entry := textAddr + spec.EntryOff
	if spec.Shared {
		entry = 0
	}
	h := Header{
		Type:     fileType,
		Machine:  MachineX86_64,
		Entry:    entry,
		PhOff:    ehdrSize,
		ShOff:    shOff,
		PhNum:    uint16(len(progs)),
		ShNum:    uint16(shNum),
		ShStrNdx: uint16(shNum - 1),
	}
	writeEhdr(out, &h)
	for i := range progs {
		writePhdr(out[ehdrSize+uint64(i)*phdrSize:], &progs[i])
	}
	copy(out[textOff:], spec.Text)
	if haveInit {
		copy(out[initOff:], spec.Init)
	}
	copy(out[dataOff:], spec.Data)
	if haveSyms {
		nameOff := uint32(1)
		for i := range spec.Symbols {
			writeSym(out[symOff+uint64(1+i)*symSize:], nameOff, &spec.Symbols[i])
			nameOff += uint32(len(spec.Symbols[i].Name)) + 1
		}
		copy(out[symStrOff:], symStrs)
	}
	copy(out[strtabOff:], strtab)

	sections := []Section{
		{}, // SHT_NULL
		{
			NameOff: nameText, Type: SHTProgbits,
			Flags: SHFAlloc | SHFExecinstr,
			Addr:  textAddr, Off: textOff, Size: uint64(len(spec.Text)),
			Addralign: 16,
		},
	}
	if haveInit {
		sections = append(sections, Section{
			NameOff: nameInit, Type: SHTProgbits,
			Flags: SHFAlloc | SHFExecinstr,
			Addr:  initAddr, Off: initOff, Size: uint64(len(spec.Init)),
			Addralign: 16,
		})
	}
	sections = append(sections,
		Section{
			NameOff: nameData, Type: SHTProgbits,
			Flags: SHFAlloc | SHFWrite,
			Addr:  dataAddr, Off: dataOff, Size: uint64(len(spec.Data)),
			Addralign: 8,
		},
		Section{
			NameOff: nameBSS, Type: SHTNobits,
			Flags: SHFAlloc | SHFWrite,
			Addr:  dataAddr + uint64(len(spec.Data)),
			Off:   dataEnd, Size: spec.BSSSize,
			Addralign: 32,
		})
	if haveSyms {
		sections = append(sections,
			Section{
				NameOff: nameSymtab, Type: SHTSymtab,
				Off: symOff, Size: symSize64,
				// Link names the associated string table: the .strtab
				// section right after this one.
				Link: uint32(len(sections)) + 1, Info: 1, Entsize: symSize,
				Addralign: 8,
			},
			Section{
				NameOff: nameStrtab, Type: SHTStrtab,
				Off: symStrOff, Size: uint64(len(symStrs)),
				Addralign: 1,
			})
	}
	sections = append(sections, Section{
		NameOff: nameShstr, Type: SHTStrtab,
		Off: strtabOff, Size: uint64(len(strtab)),
		Addralign: 1,
	})
	for i := range sections {
		writeShdr(out[shOff+uint64(i)*shdrSize:], &sections[i])
	}
	return out, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Trailer marks data appended to a rewritten binary. The rewriter
// appends new content strictly at end-of-file (never moving existing
// bytes) and finishes with a 24-byte trailer so the loader can locate
// the appended region.
const trailerMagic = "E9PGLD64"

// Append returns file extended with blob at a page-aligned offset,
// followed by a locating trailer. The original bytes are unchanged.
func Append(file, blob []byte) []byte {
	off := alignUp(uint64(len(file)), PageSize)
	out := make([]byte, off+uint64(len(blob))+24)
	copy(out, file)
	copy(out[off:], blob)
	tr := out[off+uint64(len(blob)):]
	copy(tr, trailerMagic)
	le.PutUint64(tr[8:], off)
	le.PutUint64(tr[16:], uint64(len(blob)))
	return out
}

// Compose is Append for the zero-copy paths: it produces the same
// bytes as mutating file's text section in place (PatchBytes) and then
// appending blob, but in a single output allocation and without ever
// writing to file — so file may be a read-only mmap view shared with
// the kernel page cache. code overlays the file at textOff; the caller
// guarantees textOff+len(code) lies inside the file (the parser's
// TextRange already validated it).
func Compose(file []byte, textOff uint64, code, blob []byte) []byte {
	off := alignUp(uint64(len(file)), PageSize)
	out := make([]byte, off+uint64(len(blob))+24)
	copy(out, file)
	copy(out[textOff:], code)
	copy(out[off:], blob)
	tr := out[off+uint64(len(blob)):]
	copy(tr, trailerMagic)
	le.PutUint64(tr[8:], off)
	le.PutUint64(tr[16:], uint64(len(blob)))
	return out
}

// AppendedBlob extracts the blob attached by Append, if present.
func AppendedBlob(file []byte) ([]byte, bool) {
	if len(file) < 24 {
		return nil, false
	}
	tr := file[len(file)-24:]
	if string(tr[:8]) != trailerMagic {
		return nil, false
	}
	off := le.Uint64(tr[8:])
	size := le.Uint64(tr[16:])
	if off+size+24 != uint64(len(file)) {
		return nil, false
	}
	return file[off : off+size], true
}
