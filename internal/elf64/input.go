package elf64

import (
	"fmt"
	"os"

	"e9patch/internal/e9err"
)

// Input is a binary loaded for rewriting with zero-copy intent: on
// platforms with mmap support the file is mapped read-only and Data
// aliases the mapping, so a browser-class input never lands on the Go
// heap at all. When mapping is unavailable (or fails — network
// filesystems, exotic mounts) the portable fallback reads the file
// into memory; both paths yield byte-identical Data, which the
// differential tests assert across the hostile corpus.
//
// The rewrite pipeline never mutates its input (the immutability tests
// cover this), so a read-only shared mapping is safe to hand to Plan,
// Apply, Rewrite and Stream directly.
type Input struct {
	// Data is the file contents: an mmap view or a heap copy.
	Data []byte
	// Mapped reports whether Data is an mmap view (false: heap).
	Mapped bool

	mapping []byte // the exact slice to unmap, when Mapped
}

// disableMmap forces the portable read path; the fallback differential
// tests flip it to simulate mmap failure.
var disableMmap = false

// SetMmapDisabledForTesting forces (or restores) the portable read
// path and returns the previous setting. Test-only.
func SetMmapDisabledForTesting(disabled bool) (prev bool) {
	prev = disableMmap
	disableMmap = disabled
	return prev
}

// OpenInput loads path for rewriting, preferring a read-only mmap view
// and falling back to a plain read. Errors opening or reading the file
// are classified as malformed input (the caller named a file we cannot
// load); mmap failure alone is not an error — it selects the fallback.
func OpenInput(path string) (*Input, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, e9err.Wrap(e9err.ErrMalformed, "parse", fmt.Errorf("elf64: open input: %w", err))
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, e9err.Wrap(e9err.ErrMalformed, "parse", fmt.Errorf("elf64: stat input: %w", err))
	}
	if st.Size() > 0 && !disableMmap {
		if m, err := mmapFile(f, st.Size()); err == nil {
			return &Input{Data: m, Mapped: true, mapping: m}, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, e9err.Wrap(e9err.ErrMalformed, "parse", fmt.Errorf("elf64: read input: %w", err))
	}
	return &Input{Data: data}, nil
}

// Close releases the mapping, if any. Data must not be used after
// Close. Safe on the fallback path and on a nil receiver.
func (in *Input) Close() error {
	if in == nil || !in.Mapped {
		return nil
	}
	m := in.mapping
	in.Data, in.mapping, in.Mapped = nil, nil, false
	return munmapFile(m)
}
