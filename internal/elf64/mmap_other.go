//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package elf64

import (
	"errors"
	"os"
)

// errNoMmap selects the portable read path on platforms without a
// wired-up mmap implementation.
var errNoMmap = errors.New("elf64: mmap unavailable on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(m []byte) error { return nil }
