package elf64

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestSharedBuildRoundTrip: Shared builds a plain .so — ET_DYN, zero
// entry point, PIE layout — that parses back as a first-class input.
func TestSharedBuildRoundTrip(t *testing.T) {
	text := bytes.Repeat([]byte{0x90}, 64)
	text[63] = 0xC3
	raw, err := Build(BuildSpec{
		Shared:  true,
		Text:    text,
		Data:    []byte("so data"),
		BSSSize: 0x800,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsDSO() {
		t.Fatal("shared build does not parse as a DSO")
	}
	if !f.IsPIE() {
		t.Error("a DSO is position independent")
	}
	if f.Header.Entry != 0 {
		t.Errorf("entry = %#x, want 0", f.Header.Entry)
	}
	got, addr, err := f.Text()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, text) {
		t.Error("text corrupted")
	}
	if addr == 0 || addr >= DefaultBase {
		t.Errorf("DSO text addr = %#x, want a small PIE-layout address", addr)
	}

	// A PIE executable is not a DSO: the entry point distinguishes them.
	pie := buildSample(t, true, 0)
	fp, err := Parse(pie)
	if err != nil {
		t.Fatal(err)
	}
	if fp.IsDSO() {
		t.Error("PIE executable classified as DSO")
	}
	if exe := buildSample(t, false, 0); func() bool {
		fe, err := Parse(exe)
		if err != nil {
			t.Fatal(err)
		}
		return fe.IsDSO()
	}() {
		t.Error("ET_EXEC classified as DSO")
	}
}

// TestInitSegmentSpans: a build with an extra .init code blob carries
// two executable segments; ExecSpans reports both in address order and
// TextRange still prefers .text.
func TestInitSegmentSpans(t *testing.T) {
	text := bytes.Repeat([]byte{0xC3}, 128)
	init := bytes.Repeat([]byte{0x90}, 32)
	raw, err := Build(BuildSpec{
		PIE:     true,
		Text:    text,
		Init:    init,
		Data:    []byte("d"),
		BSSSize: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := f.ExecSpans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("ExecSpans = %d spans, want .text and .init", len(spans))
	}
	if spans[0].Name != ".text" || spans[1].Name != ".init" {
		t.Fatalf("spans = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Addr <= spans[0].Addr {
		t.Error("spans not in address order")
	}
	if !bytes.Equal(raw[spans[1].Off:spans[1].Off+spans[1].Size], init) {
		t.Error(".init contents corrupted")
	}
	// Two executable PT_LOADs back the two sections.
	execSegs := 0
	for _, p := range f.Progs {
		if p.Type == PTLoad && p.Flags&PFX != 0 {
			execSegs++
		}
	}
	if execSegs != 2 {
		t.Errorf("executable PT_LOAD count = %d, want 2", execSegs)
	}
	off, _, size, err := f.TextRange()
	if err != nil {
		t.Fatal(err)
	}
	if off != spans[0].Off || size != spans[0].Size {
		t.Error("TextRange did not pick .text")
	}
}

// TestTextRangeSectionFallback: when no section is literally named
// ".text" the primary code range falls back to the largest executable
// span — renaming the section must not make the binary unparseable.
func TestTextRangeSectionFallback(t *testing.T) {
	raw := buildSample(t, false, 0)
	// Rename .text -> .code in the section string table (same length).
	i := bytes.Index(raw, []byte(".text\x00"))
	if i < 0 {
		t.Fatal("no .text name in shstrtab")
	}
	copy(raw[i:], []byte(".code\x00"))
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.SectionByName(".text"); ok {
		t.Fatal("rename did not take")
	}
	text, _, err := f.Text()
	if err != nil {
		t.Fatalf("Text() after rename: %v", err)
	}
	if len(text) != 100 || text[99] != 0xC3 {
		t.Error("fallback picked the wrong span")
	}
}

// TestExecSpansStripped: with the section table zeroed out (a stripped
// binary) the spans come from the executable PT_LOAD segments.
func TestExecSpansStripped(t *testing.T) {
	raw := buildSample(t, false, 0)
	// Zero e_shoff (offset 0x28), e_shnum (0x3C) and e_shstrndx (0x3E).
	binary.LittleEndian.PutUint64(raw[0x28:], 0)
	binary.LittleEndian.PutUint16(raw[0x3C:], 0)
	binary.LittleEndian.PutUint16(raw[0x3E:], 0)
	f, err := Parse(raw)
	if err != nil {
		t.Fatalf("stripped binary does not parse: %v", err)
	}
	if len(f.Sections) != 0 {
		t.Fatalf("stripped binary still has %d sections", len(f.Sections))
	}
	spans, err := f.ExecSpans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want the one executable segment", len(spans))
	}
	if spans[0].Size == 0 || spans[0].Name != "" {
		t.Errorf("segment span = %+v", spans[0])
	}
	text, _, err := f.Text()
	if err != nil {
		t.Fatal(err)
	}
	if len(text) == 0 || !bytes.Contains(text, []byte{0xC3}) {
		t.Error("stripped text fallback lost the code")
	}
}

// TestBuildBackCompat: the Shared and Init switches leave the plain
// build byte-identical — existing goldens and benchmarks are
// unperturbed by the new fields.
func TestBuildBackCompat(t *testing.T) {
	spec := BuildSpec{
		PIE:      true,
		Text:     bytes.Repeat([]byte{0x90}, 32),
		EntryOff: 0,
		Data:     []byte("x"),
		BSSSize:  64,
	}
	a, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shared = false
	spec.Init = nil
	b, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("zero-valued Shared/Init changed the build output")
	}
}
