package match

import (
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/x86"
)

func program(t *testing.T) []x86.Inst {
	t.Helper()
	a := x86.NewAsm(0x401000)
	top := a.NewLabel()
	a.Bind(top)
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX) // heapwrite, mov, len 3
	a.MovMemReg64(x86.M(x86.RSP, 8), x86.RAX) // memwrite (stack)
	a.MovRegReg64(x86.RCX, x86.RAX)           // mov reg-reg
	a.AddRegImm64(x86.RAX, 1000)              // add, len 6? (imm32 -> 7)
	a.JccShort(x86.CondE, top)                // jcc, short
	l := a.NewLabel()
	a.Jcc(x86.CondNE, l) // jcc, len 6
	a.Bind(l)
	a.Jmp(top)                              // jump
	a.JmpReg(x86.RAX)                       // indirect jump
	a.CallRel32(0x401000)                   // call
	a.MovMemReg32(x86.MRIP(0x100), x86.RAX) // riprel write
	a.Ret()                                 // ret, len 1
	code := a.MustFinish()
	return disasm.Linear(code, 0x401000).Insts
}

func count(t *testing.T, insts []x86.Inst, expr string) int {
	t.Helper()
	pred, err := Compile(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return len(Select(pred)(insts))
}

func TestTerms(t *testing.T) {
	insts := program(t)
	cases := []struct {
		expr string
		want int
	}{
		{"true", len(insts)},
		{"false", 0},
		{"jump", 2}, // jmp rel32 + jmp *rax
		{"jcc", 2},  // short + near
		{"branch", 4},
		{"call", 1},
		{"ret", 1},
		{"indirect", 1},
		{"heapwrite", 1}, // rsp and riprel excluded
		{"memwrite", 3},  // heap + stack + riprel
		{"riprel", 1},
		{"jcc & short", 1},
		{"jcc & !short", 1},
		{"jump | jcc", 4},
		{"(jump | jcc) & short", 2}, // short jcc + 2-byte indirect jmp
		{"mnemonic=mov & !memwrite", 1},
		{"mnemonic=mov", 4},
		{"len=1", 1}, // ret
		{"len>=5", 6},
		{"addr=0x401000", 1},
		{"addr>=0x401000 & addr<0x401004", 2},
		{"op=0xC3", 1},
		{"heapwrite | ret", 2},
		{"!true", 0},
	}
	for _, tc := range cases {
		if got := count(t, insts, tc.expr); got != tc.want {
			t.Errorf("%q: got %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestMatchEquivalence(t *testing.T) {
	// The built-in selectors must be expressible in the language.
	insts := program(t)
	if got, want := count(t, insts, "jump | jcc"), len(disasm.SelectJumps(insts)); got != want {
		t.Errorf("A1 equivalence: %d vs %d", got, want)
	}
	if got, want := count(t, insts, "heapwrite"), len(disasm.SelectHeapWrites(insts)); got != want {
		t.Errorf("A2 equivalence: %d vs %d", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, expr := range []string{
		"", "bogus", "jcc &", "(jcc", "jcc)", "len=x", "addr>=", "op<0x10",
		"mnemonic<mov", "!",
	} {
		if _, err := Compile(expr); err == nil {
			t.Errorf("expression %q compiled without error", expr)
		}
	}
}

func TestWhitespaceConjunction(t *testing.T) {
	insts := program(t)
	a := count(t, insts, "jcc short")
	b := count(t, insts, "jcc & short")
	if a != b {
		t.Errorf("whitespace conjunction %d != explicit %d", a, b)
	}
}
