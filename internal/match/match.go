// Package match implements a small instruction-matching language in
// the spirit of E9Tool, the front-end shipped with E9Patch: users
// select patch points with predicates over decoded instructions rather
// than writing selector code.
//
// Grammar:
//
//	expr  := or
//	or    := and ('|' and)*
//	and   := unary (('&' | whitespace) unary)*
//	unary := '!' unary | '(' expr ')' | term
//
// Terms:
//
//	true | false        always / never
//	jump                unconditional jumps (direct or indirect)
//	jcc                 conditional jumps
//	branch              jump | jcc
//	call | ret          calls / returns
//	indirect            indirect jump or call
//	memwrite            writes memory through a ModRM operand
//	heapwrite           the paper's A2 predicate (memwrite, not rsp/rip)
//	riprel              has a RIP-relative operand
//	short               encoded length < 5 (needs punning)
//	len=N len<N len>N len<=N len>=N
//	op=0xNN             primary opcode byte
//	mnemonic=S          formatter mnemonic equals S (e.g. mnemonic=mov)
//	addr=0xA addr<0xA addr>=0xA …
//
// Examples:
//
//	"jcc & short"               conditional jumps needing punning
//	"heapwrite | call"          stores and calls
//	"mnemonic=mov & !memwrite"  register-to-register moves
package match

import (
	"fmt"
	"strconv"
	"strings"

	"e9patch/internal/x86"
)

// Predicate tests one decoded instruction.
type Predicate func(inst *x86.Inst) bool

// Compile parses a matcher expression.
func Compile(expr string) (Predicate, error) {
	p := &parser{input: expr}
	p.next()
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("match: unexpected %q at end of expression", p.lit)
	}
	return pred, nil
}

// Select converts a predicate into a patch-location selector. The
// selector tests one instruction at a time, so it is registered as
// shard-safe for parallel matching (predicates compiled from matcher
// expressions are pure by construction; callers passing hand-written
// predicates must keep them stateless too).
func Select(pred Predicate) func(insts []x86.Inst) []int {
	sel := func(insts []x86.Inst) []int {
		var out []int
		for i := range insts {
			if pred(&insts[i]) {
				out = append(out, i)
			}
		}
		return out
	}
	RegisterShardable(sel)
	return sel
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokTerm
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
)

type parser struct {
	input string
	pos   int
	tok   tokKind
	lit   string
}

func (p *parser) next() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.input) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.input[p.pos]
	switch c {
	case '&':
		p.pos++
		p.tok, p.lit = tokAnd, "&"
	case '|':
		p.pos++
		p.tok, p.lit = tokOr, "|"
	case '!':
		p.pos++
		p.tok, p.lit = tokNot, "!"
	case '(':
		p.pos++
		p.tok, p.lit = tokLParen, "("
	case ')':
		p.pos++
		p.tok, p.lit = tokRParen, ")"
	default:
		start := p.pos
		for p.pos < len(p.input) && !strings.ContainsRune(" \t&|!()", rune(p.input[p.pos])) {
			p.pos++
		}
		p.tok, p.lit = tokTerm, p.input[start:p.pos]
	}
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(in *x86.Inst) bool { return l(in) || r(in) }
	}
	return left, nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok == tokAnd {
			p.next()
		} else if p.tok != tokTerm && p.tok != tokNot && p.tok != tokLParen {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(in *x86.Inst) bool { return l(in) && r(in) }
	}
}

func (p *parser) parseUnary() (Predicate, error) {
	switch p.tok {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(in *x86.Inst) bool { return !inner(in) }, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("match: missing ')'")
		}
		p.next()
		return inner, nil
	case tokTerm:
		lit := p.lit
		p.next()
		return compileTerm(lit)
	}
	return nil, fmt.Errorf("match: unexpected token %q", p.lit)
}

func compileTerm(lit string) (Predicate, error) {
	// Relational terms: name OP value.
	for _, op := range []string{"<=", ">=", "=", "<", ">"} {
		if i := strings.Index(lit, op); i > 0 {
			return compileRel(lit[:i], op, lit[i+len(op):])
		}
	}
	switch lit {
	case "true":
		return func(*x86.Inst) bool { return true }, nil
	case "false":
		return func(*x86.Inst) bool { return false }, nil
	case "jump":
		return func(in *x86.Inst) bool { return in.IsJmp() }, nil
	case "jcc":
		return func(in *x86.Inst) bool { return in.IsJcc() }, nil
	case "branch":
		return func(in *x86.Inst) bool { return in.IsJmp() || in.IsJcc() }, nil
	case "call":
		return func(in *x86.Inst) bool { return in.IsCall() }, nil
	case "ret":
		return func(in *x86.Inst) bool { return in.IsRet() }, nil
	case "indirect":
		return func(in *x86.Inst) bool {
			return (in.IsJmp() || in.IsCall()) && in.RelSize == 0
		}, nil
	case "memwrite":
		return func(in *x86.Inst) bool { return in.WritesMem() }, nil
	case "heapwrite":
		return func(in *x86.Inst) bool { return in.IsHeapWrite() }, nil
	case "riprel":
		return func(in *x86.Inst) bool { return in.RIPRel }, nil
	case "short":
		return func(in *x86.Inst) bool { return in.Len < 5 }, nil
	}
	return nil, fmt.Errorf("match: unknown term %q", lit)
}

func compileRel(name, op, val string) (Predicate, error) {
	cmpU := func(get func(*x86.Inst) uint64, want uint64) Predicate {
		switch op {
		case "=":
			return func(in *x86.Inst) bool { return get(in) == want }
		case "<":
			return func(in *x86.Inst) bool { return get(in) < want }
		case ">":
			return func(in *x86.Inst) bool { return get(in) > want }
		case "<=":
			return func(in *x86.Inst) bool { return get(in) <= want }
		default: // ">="
			return func(in *x86.Inst) bool { return get(in) >= want }
		}
	}
	switch name {
	case "len":
		n, err := strconv.ParseUint(val, 0, 8)
		if err != nil {
			return nil, fmt.Errorf("match: bad length %q", val)
		}
		return cmpU(func(in *x86.Inst) uint64 { return uint64(in.Len) }, n), nil
	case "addr":
		n, err := strconv.ParseUint(val, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("match: bad address %q", val)
		}
		return cmpU(func(in *x86.Inst) uint64 { return in.Addr }, n), nil
	case "op":
		n, err := strconv.ParseUint(val, 0, 8)
		if err != nil {
			return nil, fmt.Errorf("match: bad opcode %q", val)
		}
		if op != "=" {
			return nil, fmt.Errorf("match: op only supports '='")
		}
		return func(in *x86.Inst) bool { return !in.TwoByte && uint64(in.Opcode) == n }, nil
	case "mnemonic":
		if op != "=" {
			return nil, fmt.Errorf("match: mnemonic only supports '='")
		}
		return func(in *x86.Inst) bool { return in.Mnemonic() == val }, nil
	}
	return nil, fmt.Errorf("match: unknown field %q", name)
}
