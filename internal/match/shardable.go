package match

import (
	"reflect"
	"sync"
)

// Shardable-selector registry. A selector over []x86.Inst can be
// evaluated shard-by-shard (each worker running it on a subslice and
// offsetting the returned indices) only if its decision for
// instruction i depends on insts[i] alone — no neighbour inspection,
// no internal state, no dependence on the slice's base index. That is
// a property of the selector's code, not of a particular closure
// instance, so the registry keys on the function's code pointer:
// registering one closure marks every closure sharing its compiled
// body (constructors like Select register each instance they return,
// which keys the registry per call site even under inlining).
// Unregistered selectors are simply evaluated sequentially, which is
// always safe.

var shardable sync.Map // code pointer (uintptr) -> struct{}

// RegisterShardable marks fn's implementation as safe for sharded
// evaluation. fn must be a function value.
func RegisterShardable(fn any) {
	shardable.Store(codePtr(fn), struct{}{})
}

// Shardable reports whether fn's implementation was registered as
// shard-safe.
func Shardable(fn any) bool {
	_, ok := shardable.Load(codePtr(fn))
	return ok
}

func codePtr(fn any) uintptr {
	v := reflect.ValueOf(fn)
	if v.Kind() != reflect.Func {
		panic("match: RegisterShardable wants a function value")
	}
	return v.Pointer()
}
