package match

import (
	"testing"

	"e9patch/internal/x86"
)

func TestSelectClosuresAreShardable(t *testing.T) {
	pred, err := Compile("jcc & short")
	if err != nil {
		t.Fatal(err)
	}
	if !Shardable(Select(pred)) {
		t.Error("Select-derived selector not shardable")
	}
	// Two distinct predicates share Select's closure code.
	pred2, _ := Compile("heapwrite")
	if !Shardable(Select(pred2)) {
		t.Error("second Select instance not shardable")
	}
}

func TestUnknownSelectorNotShardable(t *testing.T) {
	stateful := func(insts []x86.Inst) []int { return nil }
	if Shardable(stateful) {
		t.Error("unregistered selector reported shardable")
	}
	RegisterShardable(stateful)
	if !Shardable(stateful) {
		t.Error("registration did not take")
	}
}

func TestRegisterShardableNonFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-function")
		}
	}()
	RegisterShardable(42)
}
