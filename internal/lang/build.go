package lang

import (
	"fmt"
	"sort"

	"e9patch/internal/e9err"
	"e9patch/internal/elf64"
	"e9patch/internal/lowfat"
	"e9patch/internal/plan"
	"e9patch/internal/trampoline"
	"e9patch/internal/x86"
)

// BuildResult is a spec lowered to pipeline configuration: selector,
// trampoline template, payload injections and extra VA reservations.
// The caller copies these into an e9patch.Config.
type BuildResult struct {
	// Select is the compiled, shardable patch-location selector.
	Select func(insts []x86.Inst) []int
	// Template is the trampoline template for the patch directive.
	Template trampoline.Template
	// Inject are the payload ELF's loadable segments, in runtime
	// coordinates (empty unless the patch is a call).
	Inject []plan.Injection
	// ReserveVA are extra address ranges the rewrite must keep free
	// (the lowfat runtime tables for lowfat patches).
	ReserveVA [][2]uint64
	// FnName/FnAddr identify the resolved payload function for call
	// patches (zero otherwise).
	FnName string
	FnAddr uint64
}

// Build lowers the spec. payload is the payload ELF's bytes for call
// patches (resolved from Spec.PayloadRef by the caller — a file for
// e9tool, a request field for e9served); other patch kinds ignore it.
func (s *Spec) Build(payload []byte) (*BuildResult, error) {
	r := &BuildResult{Select: s.Selector()}
	switch s.Patch.Kind {
	case PatchEmpty:
		r.Template = trampoline.Empty{}
	case PatchCounter:
		r.Template = trampoline.Counter{Addr: s.Patch.Addr}
	case PatchContextCall:
		r.Template = trampoline.ContextCall{Fn: s.Patch.Addr}
	case PatchLowfat:
		r.Template = lowfat.CheckTemplate{}
		r.ReserveVA = lowfat.ReserveVA()
	case PatchLowfatTrap:
		r.Template = lowfat.CheckTemplate{Trap: true}
		r.ReserveVA = lowfat.ReserveVA()
	case PatchCall:
		if err := s.buildCall(payload, r); err != nil {
			return nil, err
		}
	default:
		return nil, e9err.Unsupported("spec", "unknown patch kind %d", int(s.Patch.Kind))
	}
	return r, nil
}

// buildCall resolves the payload ELF: parse, locate the patch
// function's symbol, and turn every PT_LOAD into an injection
// (file bytes zero-extended to the in-memory size).
func (s *Spec) buildCall(payload []byte, r *BuildResult) error {
	if len(payload) == 0 {
		ref := s.PayloadRef
		if ref == "" {
			ref = "(no payload reference)"
		}
		return e9err.Unsupported("spec",
			"patch %q calls %s but no payload ELF was supplied (reference: %s)",
			s.Patch.Src, s.Patch.Fn, ref)
	}
	f, err := elf64.Parse(payload)
	if err != nil {
		return fmt.Errorf("spec payload: %w", err)
	}
	if f.IsPIE() {
		return e9err.Unsupported("spec",
			"payload ELF is position independent; call patches need fixed-address payloads (link at a free base such as %#x)",
			uint64(0x9_0000_0000))
	}
	syms, err := f.Symbols()
	if err != nil {
		return fmt.Errorf("spec payload: %w", err)
	}
	var fn *elf64.Sym
	avail := make([]string, 0, len(syms))
	for i := range syms {
		avail = append(avail, syms[i].Name)
		if syms[i].Name == s.Patch.Fn {
			fn = &syms[i]
		}
	}
	if fn == nil {
		sort.Strings(avail)
		return e9err.Unsupported("spec",
			"payload ELF does not define function %q (symbols: %v)", s.Patch.Fn, avail)
	}
	for _, p := range f.Progs {
		if p.Type != elf64.PTLoad || p.Memsz == 0 {
			continue
		}
		data := make(plan.Bytes, p.Memsz)
		copy(data, payload[p.Off:p.Off+p.Filesz])
		r.Inject = append(r.Inject, plan.Injection{Addr: p.Vaddr, Data: data})
	}
	if len(r.Inject) == 0 {
		return e9err.Unsupported("spec", "payload ELF has no loadable segments")
	}
	r.FnName = fn.Name
	r.FnAddr = fn.Addr
	r.Template = &trampoline.Call{Fn: fn.Addr, Args: s.Patch.Args}
	return nil
}
