package lang

import (
	"strconv"
	"strings"

	"e9patch/internal/e9err"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tAnd    // '&', '&&' or the keyword 'and'
	tOr     // '|', '||' or the keyword 'or'
	tNot    // '!' or the keyword 'not'
	tLParen // '('
	tRParen // ')'
	tEq     // '=' or '=='
	tNe     // '!='
	tLt     // '<'
	tGt     // '>'
	tLe     // '<='
	tGe     // '>='
	tDotDot // '..'
	tComma  // ','
	tAt     // '@'
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tNumber:
		return "number"
	case tString:
		return "string"
	case tAnd:
		return "'&'"
	case tOr:
		return "'|'"
	case tNot:
		return "'!'"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tEq:
		return "'='"
	case tNe:
		return "'!='"
	case tLt:
		return "'<'"
	case tGt:
		return "'>'"
	case tLe:
		return "'<='"
	case tGe:
		return "'>='"
	case tDotDot:
		return "'..'"
	case tComma:
		return "','"
	case tAt:
		return "'@'"
	}
	return "token"
}

type token struct {
	kind tokKind
	text string // identifier / string body / raw number text
	num  uint64 // value when kind == tNumber
	pos  Pos
}

// lexer scans one expression or patch spec. base positions let spec
// files report file-accurate line:column for directives parsed from
// the middle of a line.
type lexer struct {
	src   string
	off   int
	pos   Pos    // position of src[off]
	phase string // e9err phase for diagnostics
}

func newLexer(src string, base Pos, phase string) *lexer {
	if base.Line == 0 {
		base = Pos{Line: 1, Col: 1}
	}
	return &lexer{src: src, pos: base, phase: phase}
}

func (lx *lexer) errf(p Pos, format string, args ...any) *e9err.Error {
	return e9err.BadSpec(lx.phase, p.Line, p.Col, format, args...)
}

// advance consumes n bytes, tracking line/column.
func (lx *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if lx.src[lx.off+i] == '\n' {
			lx.pos.Line++
			lx.pos.Col = 1
		} else {
			lx.pos.Col++
		}
	}
	lx.off += n
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Identifier tails allow '-' so multi-word patch kinds (lowfat-trap)
// lex as one token; '-' is not an operator anywhere in the grammar.
func isIdentCont(c byte) bool {
	return isIdentStart(c) || c == '-' || (c >= '0' && c <= '9')
}

func isNumCont(c byte) bool {
	return c == '_' || c == 'x' || c == 'X' || c == 'b' || c == 'B' ||
		c == 'o' || c == 'O' || (c >= '0' && c <= '9') ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// next scans the next token.
func (lx *lexer) next() (token, error) {
	// Skip whitespace and # comments.
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			lx.advance(1)
			continue
		}
		if c == '#' {
			n := lx.off
			for n < len(lx.src) && lx.src[n] != '\n' {
				n++
			}
			lx.advance(n - lx.off)
			continue
		}
		break
	}
	start := lx.pos
	if lx.off >= len(lx.src) {
		return token{kind: tEOF, pos: start}, nil
	}
	c := lx.src[lx.off]
	switch {
	case isIdentStart(c):
		n := lx.off
		for n < len(lx.src) && isIdentCont(lx.src[n]) {
			n++
		}
		text := lx.src[lx.off:n]
		lx.advance(n - lx.off)
		switch text {
		case "and":
			return token{kind: tAnd, text: text, pos: start}, nil
		case "or":
			return token{kind: tOr, text: text, pos: start}, nil
		case "not":
			return token{kind: tNot, text: text, pos: start}, nil
		}
		return token{kind: tIdent, text: text, pos: start}, nil

	case c >= '0' && c <= '9':
		n := lx.off
		for n < len(lx.src) && isNumCont(lx.src[n]) {
			n++
		}
		text := lx.src[lx.off:n]
		lx.advance(n - lx.off)
		v, err := strconv.ParseUint(text, 0, 64)
		if err != nil {
			return token{}, lx.errf(start, "bad number %q", text)
		}
		return token{kind: tNumber, text: text, num: v, pos: start}, nil

	case c == '"':
		var b strings.Builder
		n := lx.off + 1
		for {
			if n >= len(lx.src) || lx.src[n] == '\n' {
				return token{}, lx.errf(start, "unterminated string")
			}
			if lx.src[n] == '"' {
				n++
				break
			}
			if lx.src[n] == '\\' {
				if n+1 >= len(lx.src) {
					return token{}, lx.errf(start, "unterminated string")
				}
				switch lx.src[n+1] {
				case '\\', '"':
					b.WriteByte(lx.src[n+1])
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					// Keep the backslash: regex escapes like \d pass
					// through to the regexp compiler untouched.
					b.WriteByte('\\')
					b.WriteByte(lx.src[n+1])
				}
				n += 2
				continue
			}
			b.WriteByte(lx.src[n])
			n++
		}
		lx.advance(n - lx.off)
		return token{kind: tString, text: b.String(), pos: start}, nil
	}

	two := func(kind tokKind, text string) (token, error) {
		lx.advance(2)
		return token{kind: kind, text: text, pos: start}, nil
	}
	one := func(kind tokKind) (token, error) {
		lx.advance(1)
		return token{kind: kind, text: string(c), pos: start}, nil
	}
	var c2 byte
	if lx.off+1 < len(lx.src) {
		c2 = lx.src[lx.off+1]
	}
	switch c {
	case '&':
		if c2 == '&' {
			return two(tAnd, "&&")
		}
		return one(tAnd)
	case '|':
		if c2 == '|' {
			return two(tOr, "||")
		}
		return one(tOr)
	case '!':
		if c2 == '=' {
			return two(tNe, "!=")
		}
		return one(tNot)
	case '=':
		if c2 == '=' {
			return two(tEq, "==")
		}
		return one(tEq)
	case '<':
		if c2 == '=' {
			return two(tLe, "<=")
		}
		return one(tLt)
	case '>':
		if c2 == '=' {
			return two(tGe, ">=")
		}
		return one(tGt)
	case '.':
		if c2 == '.' {
			return two(tDotDot, "..")
		}
	case '(':
		return one(tLParen)
	case ')':
		return one(tRParen)
	case ',':
		return one(tComma)
	case '@':
		return one(tAt)
	}
	return token{}, lx.errf(start, "unexpected character %q", string(c))
}

// rest consumes and returns the remaining input, trimmed. Used for
// payload references after '@', which may contain path characters the
// token grammar does not cover.
func (lx *lexer) rest() string {
	s := lx.src[lx.off:]
	lx.advance(len(s))
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}
