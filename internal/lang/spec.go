package lang

import (
	"fmt"
	"strings"

	"e9patch/internal/e9err"
	"e9patch/internal/match"
	"e9patch/internal/x86"
)

// Spec is a parsed, typechecked and compiled spec file: a match
// expression, optional exclusions, and a patch directive.
type Spec struct {
	// Match is the required match expression's AST.
	Match Node
	// MatchSrc is the match expression's source text.
	MatchSrc string
	// Excludes are exclusion expressions; instructions they match are
	// removed from the selection.
	Excludes []Node
	// ExcludeSrcs are the exclusion source texts, same order.
	ExcludeSrcs []string
	// Patch is the patch directive (defaults to empty).
	Patch *PatchSpec
	// PayloadRef is the payload reference (the patch directive's @REF,
	// or a standalone payload directive).
	PayloadRef string

	prog *Program // effective compiled program (match && !excludes)
}

// ParseSpec parses a spec file:
//
//	# comment
//	match EXPR        required, exactly once
//	exclude EXPR      optional, repeatable
//	patch PATCH       optional, at most once (default: empty)
//	payload REF       optional, at most once
//
// Positions in errors are file-accurate (directive line, expression
// column).
func ParseSpec(text string) (*Spec, error) {
	const phase = "spec"
	if len(text) > maxSpecBytes {
		return nil, e9err.BadSpec(phase, 1, 1, "spec too large (%d bytes, limit %d)", len(text), maxSpecBytes)
	}
	s := &Spec{}
	var exProgs []*Program
	var matchProg *Program
	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		word := trimmed
		if i := strings.IndexAny(trimmed, " \t"); i >= 0 {
			word = trimmed[:i]
		}
		rest := strings.TrimPrefix(trimmed, word)
		indent := len(line) - len(trimmed)
		// Column of the directive argument's first character, 1-based.
		col := indent + len(word) + countLeft(rest) + 1
		rest = strings.TrimSpace(rest)
		base := Pos{Line: ln + 1, Col: col}
		wordAt := Pos{Line: ln + 1, Col: indent + 1}

		switch word {
		case "match":
			if s.Match != nil {
				return nil, e9err.BadSpec(phase, wordAt.Line, wordAt.Col, "duplicate match directive")
			}
			n, err := parseExprString(rest, base, phase)
			if err != nil {
				return nil, err
			}
			s.Match = n
			s.MatchSrc = rest
			matchProg = compileChecked(n, rest)

		case "exclude":
			n, err := parseExprString(rest, base, phase)
			if err != nil {
				return nil, err
			}
			s.Excludes = append(s.Excludes, n)
			s.ExcludeSrcs = append(s.ExcludeSrcs, rest)
			exProgs = append(exProgs, compileChecked(n, rest))

		case "patch":
			if s.Patch != nil {
				return nil, e9err.BadSpec(phase, wordAt.Line, wordAt.Col, "duplicate patch directive")
			}
			ps, err := parsePatchString(rest, base, phase)
			if err != nil {
				return nil, err
			}
			s.Patch = ps

		case "payload":
			if s.PayloadRef != "" {
				return nil, e9err.BadSpec(phase, wordAt.Line, wordAt.Col, "duplicate payload directive")
			}
			if rest == "" {
				return nil, e9err.BadSpec(phase, base.Line, base.Col, "payload directive needs a reference")
			}
			s.PayloadRef = rest

		default:
			return nil, e9err.BadSpec(phase, wordAt.Line, wordAt.Col,
				"unknown directive %q (want match, exclude, patch or payload)", word)
		}
	}
	if s.Match == nil {
		return nil, e9err.BadSpec(phase, 1, 1, "spec has no match directive")
	}
	if s.Patch == nil {
		s.Patch = &PatchSpec{Src: "empty"}
	}
	if s.Patch.PayloadRef != "" {
		if s.PayloadRef != "" && s.PayloadRef != s.Patch.PayloadRef {
			return nil, e9err.BadSpec(phase, 1, 1,
				"conflicting payload references %q and %q", s.Patch.PayloadRef, s.PayloadRef)
		}
		s.PayloadRef = s.Patch.PayloadRef
	}
	s.prog = compose(matchProg, exProgs)
	return s, nil
}

// countLeft counts the leading whitespace of s.
func countLeft(s string) int {
	n := 0
	for n < len(s) && (s[n] == ' ' || s[n] == '\t') {
		n++
	}
	return n
}

// FromParts assembles a Spec from separate match and patch strings —
// the e9tool -M/-P path. patchSrc may be empty (empty patch).
func FromParts(matchExpr, patchSrc string) (*Spec, error) {
	n, err := parseExprString(matchExpr, Pos{Line: 1, Col: 1}, "match")
	if err != nil {
		return nil, err
	}
	ps, err := ParsePatch(patchSrc)
	if err != nil {
		return nil, err
	}
	s := &Spec{
		Match:      n,
		MatchSrc:   strings.TrimSpace(matchExpr),
		Patch:      ps,
		PayloadRef: ps.PayloadRef,
		prog:       compileChecked(n, strings.TrimSpace(matchExpr)),
	}
	return s, nil
}

// Program returns the effective compiled program: the match
// expression with all exclusions conjoined negatively.
func (s *Spec) Program() *Program { return s.prog }

// Selector returns a patch-location selector for the effective
// program, registered match.Shardable.
func (s *Spec) Selector() func(insts []x86.Inst) []int { return s.prog.Selector() }

// Dump renders the whole spec: per-directive typed ASTs plus the
// compiled selector's shardability — the e9dump -spec output.
func (s *Spec) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "match %s\n", s.MatchSrc)
	b.WriteString(indentLines(DumpNode(s.Match)))
	for i, ex := range s.Excludes {
		fmt.Fprintf(&b, "exclude %s\n", s.ExcludeSrcs[i])
		b.WriteString(indentLines(DumpNode(ex)))
	}
	fmt.Fprintf(&b, "patch %s\n", s.Patch)
	if s.PayloadRef != "" {
		fmt.Fprintf(&b, "payload %s\n", s.PayloadRef)
	}
	shard := "not shardable"
	if s.prog.ShardSafe() && match.Shardable(s.Selector()) {
		shard = "shardable (registered via match.Select; all ops pure)"
	}
	fmt.Fprintf(&b, "selector: %d ops, %s\n", len(s.prog.Ops()), shard)
	return b.String()
}

func indentLines(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
