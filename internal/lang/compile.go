package lang

import (
	"fmt"
	"strings"

	"e9patch/internal/match"
	"e9patch/internal/x86"
)

// The compiler lowers a typechecked AST to a tree of closures (the
// evaluator — no per-call state, so one compiled program is safe to
// run from every matching shard concurrently) plus a flat postfix op
// listing used by the shardability audit and e9dump. Every op is pure:
// it reads the single instruction it is handed and nothing else, which
// is exactly the contract match.RegisterShardable documents. Selector()
// therefore registers the compiled predicate shardable by construction.

// opInfo is one postfix op in the compiled program's listing.
type opInfo struct {
	name string // e.g. "term jcc", "cmp addr >= 0x1000", "and"
	pure bool   // reads only the instruction under test
}

// Program is a compiled match expression.
type Program struct {
	src  string
	eval func(*x86.Inst) bool
	ops  []opInfo
}

// Src returns the source text the program was compiled from.
func (p *Program) Src() string { return p.src }

// Eval tests one instruction.
func (p *Program) Eval(i *x86.Inst) bool { return p.eval(i) }

// Predicate adapts the program to the match package's predicate type.
func (p *Program) Predicate() match.Predicate { return p.eval }

// Selector compiles the program into a patch-location selector
// registered as match.Shardable (every op is pure, audited by
// ShardSafe).
func (p *Program) Selector() func(insts []x86.Inst) []int {
	return match.Select(p.Predicate())
}

// ShardSafe audits the compiled ops: a program may shard exactly when
// every op is pure. Compiled programs always are — the audit exists so
// e9dump can *show* the property rather than assert it.
func (p *Program) ShardSafe() bool {
	for _, op := range p.ops {
		if !op.pure {
			return false
		}
	}
	return true
}

// Ops returns the postfix op listing, one string per op.
func (p *Program) Ops() []string {
	out := make([]string, len(p.ops))
	for i, op := range p.ops {
		out[i] = op.name
	}
	return out
}

// Disasm renders the op listing for debugging.
func (p *Program) Disasm() string {
	var b strings.Builder
	for i, op := range p.ops {
		fmt.Fprintf(&b, "%3d  %s\n", i, op.name)
	}
	return b.String()
}

// lower compiles one checked node, appending its postfix ops.
func lower(n Node, ops *[]opInfo) func(*x86.Inst) bool {
	switch n := n.(type) {
	case *Term:
		fn := n.fn
		*ops = append(*ops, opInfo{name: "term " + n.Name, pure: true})
		return fn

	case *Rel:
		ev := lowerRel(n)
		*ops = append(*ops, opInfo{
			name: fmt.Sprintf("cmp %s %s %s", n.Attr, n.Op, n.Val),
			pure: true,
		})
		return ev

	case *Not:
		x := lower(n.X, ops)
		*ops = append(*ops, opInfo{name: "not", pure: true})
		return func(i *x86.Inst) bool { return !x(i) }

	case *And:
		x := lower(n.X, ops)
		y := lower(n.Y, ops)
		*ops = append(*ops, opInfo{name: "and", pure: true})
		return func(i *x86.Inst) bool { return x(i) && y(i) }

	case *Or:
		x := lower(n.X, ops)
		y := lower(n.Y, ops)
		*ops = append(*ops, opInfo{name: "or", pure: true})
		return func(i *x86.Inst) bool { return x(i) || y(i) }
	}
	panic("lang: lower: unchecked node")
}

func lowerRel(n *Rel) func(*x86.Inst) bool {
	switch {
	case n.intFn != nil:
		fn := n.intFn
		if n.Val.Kind == ValRange {
			lo, hi := n.Val.Int, n.Val.Hi
			in := func(i *x86.Inst) bool { v := fn(i); return lo <= v && v < hi }
			if n.Op == "!=" {
				return func(i *x86.Inst) bool { return !in(i) }
			}
			return in
		}
		v := n.Val.Int
		switch n.Op {
		case "=":
			return func(i *x86.Inst) bool { return fn(i) == v }
		case "!=":
			return func(i *x86.Inst) bool { return fn(i) != v }
		case "<":
			return func(i *x86.Inst) bool { return fn(i) < v }
		case ">":
			return func(i *x86.Inst) bool { return fn(i) > v }
		case "<=":
			return func(i *x86.Inst) bool { return fn(i) <= v }
		case ">=":
			return func(i *x86.Inst) bool { return fn(i) >= v }
		}

	case n.re != nil:
		fn, re := n.strFn, n.re
		if n.Op == "!=" {
			return func(i *x86.Inst) bool { return !re.MatchString(fn(i)) }
		}
		return func(i *x86.Inst) bool { return re.MatchString(fn(i)) }

	case n.strFn != nil:
		fn, s := n.strFn, n.Val.Str
		if n.Op == "!=" {
			return func(i *x86.Inst) bool { return fn(i) != s }
		}
		return func(i *x86.Inst) bool { return fn(i) == s }

	case n.regFn != nil:
		fn, r := n.regFn, n.reg
		if n.Op == "!=" {
			return func(i *x86.Inst) bool { return fn(i) != r }
		}
		return func(i *x86.Inst) bool { return fn(i) == r }
	}
	panic("lang: lowerRel: unchecked comparison")
}

// compileChecked lowers an already-typechecked AST.
func compileChecked(n Node, src string) *Program {
	var ops []opInfo
	eval := lower(n, &ops)
	return &Program{src: src, eval: eval, ops: ops}
}

// CompileExpr parses, typechecks and compiles a match expression.
func CompileExpr(src string) (*Program, error) {
	n, err := ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return compileChecked(n, src), nil
}

// compose builds the effective program for a spec: the match
// expression with every exclusion conjoined negatively
// (match && !ex1 && !ex2 ...).
func compose(m *Program, excludes []*Program) *Program {
	if len(excludes) == 0 {
		return m
	}
	eval := m.eval
	ops := append([]opInfo(nil), m.ops...)
	src := m.src
	for _, ex := range excludes {
		me, xe := eval, ex.eval
		eval = func(i *x86.Inst) bool { return me(i) && !xe(i) }
		ops = append(ops, ex.ops...)
		ops = append(ops, opInfo{name: "not", pure: true}, opInfo{name: "and", pure: true})
		src = fmt.Sprintf("(%s) & !(%s)", src, ex.src)
	}
	return &Program{src: src, eval: eval, ops: ops}
}
