// Package lang implements the spec language: the compiled front-end
// that turns E9Tool-style match expressions and patch specifications
// into selectors, trampoline templates and payload injections for the
// rewriting pipeline. It is the data-file counterpart of the hardcoded
// Go selectors — syscall tracing, coverage instrumentation and CVE
// recipes become spec files instead of code changes (DESIGN.md §11).
//
// The compilation pipeline is conventional:
//
//	lexer → parser → typechecker → closure compiler
//
// Match expressions are boolean formulas over decoded instruction
// attributes:
//
//	expr   := or
//	or     := and (('|' | 'or') and)*
//	and    := unary (('&' | 'and') unary)*
//	unary  := ('!' | 'not') unary | '(' expr ')' | term
//	term   := NAME | NAME relop value
//	relop  := '=' | '==' | '!=' | '<' | '>' | '<=' | '>='
//	value  := NUMBER | NUMBER '..' NUMBER | NAME | STRING
//
// Boolean terms (true, jump, jcc, branch, call, ret, indirect,
// memwrite, heapwrite, riprel, short, mem, direct, twobyte) need no
// comparison; integer attributes (addr, len/size, op, target, imm,
// disp, width) compare against numbers or half-open ranges `lo..hi`;
// string attributes compare mnemonics exactly and `asm=` against an
// anchored regular expression over the formatter's AT&T rendering;
// register attributes (base, index) compare against register names.
// `#` starts a comment.
//
// Patch specifications name a trampoline:
//
//	patch  := 'empty' | 'counter' '=' ADDR | 'contextcall' '=' ADDR
//	        | 'lowfat' | 'lowfat-trap'
//	        | 'call' NAME '(' args ')' ('@' PAYLOAD)?
//	args   := (arg (',' arg)*)?  — at most 6 (SysV integer registers)
//	arg    := 'addr' | 'size' | 'len' | 'target' | 'imm' | 'next'
//	        | 'asm' | NUMBER
//
// Spec files combine both, one directive per line:
//
//	match EXPR        required, exactly once
//	exclude EXPR      optional, repeatable; removes matches
//	patch PATCH       optional, at most once (default: empty)
//	payload REF       optional; payload ELF reference for call patches
//
// Compiled expressions evaluate one instruction at a time with no
// internal state, so their selectors register as match.Shardable by
// construction and compose with the parallel pipeline and the
// PatchPlan IR unchanged. All parse and typecheck failures are
// classified e9err.ErrBadSpec with the 1-based line:column of the
// offending token.
package lang

import "fmt"

// Pos is a 1-based source position inside an expression or spec file.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Input-size guards. Expressions beyond these bounds are rejected as
// bad specs before any quadratic work happens; the limits are far
// above anything a hand-written recipe needs.
const (
	maxExprBytes = 64 << 10
	maxSpecBytes = 256 << 10
	maxNodes     = 4096
	maxDepth     = 200
)
