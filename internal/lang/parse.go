package lang

import "e9patch/internal/e9err"

// parser is a recursive-descent parser with hard bounds on input
// size, node count and nesting depth so hostile expressions (fuzzing,
// the network API) cannot exhaust memory or the goroutine stack.
type parser struct {
	lx    *lexer
	tok   token
	nodes int
	depth int
}

func newParser(src string, base Pos, phase string) (*parser, error) {
	if len(src) > maxExprBytes {
		return nil, e9err.BadSpec(phase, base.Line, base.Col,
			"expression too large (%d bytes, limit %d)", len(src), maxExprBytes)
	}
	p := &parser{lx: newLexer(src, base, phase)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errf(pos Pos, format string, args ...any) error {
	return p.lx.errf(pos, format, args...)
}

func (p *parser) countNode() error {
	p.nodes++
	if p.nodes > maxNodes {
		return p.errf(p.tok.pos, "expression too complex (more than %d terms)", maxNodes)
	}
	return nil
}

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errf(p.tok.pos, "expression nested too deeply (limit %d)", maxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// parseExprString parses and typechecks a complete expression,
// requiring the whole input to be consumed.
func parseExprString(src string, base Pos, phase string) (Node, error) {
	p, err := newParser(src, base, phase)
	if err != nil {
		return nil, err
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf(p.tok.pos, "unexpected %s %q after expression", p.tok.kind, p.tok.text)
	}
	if err := check(n, phase); err != nil {
		return nil, err
	}
	return n, nil
}

// ParseExpr parses and typechecks a match expression into a typed
// AST. Most callers want CompileExpr; ParseExpr is the inspection
// entry point (e9dump -spec).
func ParseExpr(src string) (Node, error) {
	return parseExprString(src, Pos{Line: 1, Col: 1}, "match")
}

func (p *parser) parseOr() (Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tOr {
		at := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if err := p.countNode(); err != nil {
			return nil, err
		}
		x = &Or{At: at, X: x, Y: y}
	}
	return x, nil
}

// startsUnary reports whether the current token can begin a unary
// operand — the legacy match grammar treats adjacency as conjunction
// ("jcc short"), which this grammar keeps for spec-file brevity.
func (p *parser) startsUnary() bool {
	switch p.tok.kind {
	case tNot, tLParen, tIdent:
		return true
	}
	return false
}

func (p *parser) parseAnd() (Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tAnd || p.startsUnary() {
		at := p.tok.pos
		if p.tok.kind == tAnd {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if err := p.countNode(); err != nil {
			return nil, err
		}
		x = &And{At: at, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.tok.kind {
	case tNot:
		at := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if err := p.countNode(); err != nil {
			return nil, err
		}
		return &Not{At: at, X: x}, nil

	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, p.errf(p.tok.pos, "expected ')', got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return x, nil

	case tIdent:
		return p.parseTerm()
	}
	return nil, p.errf(p.tok.pos, "expected a term, got %s", p.tok.kind)
}

func relOpText(k tokKind) (string, bool) {
	switch k {
	case tEq:
		return "=", true
	case tNe:
		return "!=", true
	case tLt:
		return "<", true
	case tGt:
		return ">", true
	case tLe:
		return "<=", true
	case tGe:
		return ">=", true
	}
	return "", false
}

func (p *parser) parseTerm() (Node, error) {
	name := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	op, isRel := relOpText(p.tok.kind)
	if !isRel {
		if err := p.countNode(); err != nil {
			return nil, err
		}
		return &Term{At: name.pos, Name: name.text}, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	if err := p.countNode(); err != nil {
		return nil, err
	}
	return &Rel{At: name.pos, Attr: name.text, Op: op, Val: val}, nil
}

func (p *parser) parseValue() (Value, error) {
	at := p.tok.pos
	switch p.tok.kind {
	case tNumber:
		lo := p.tok.num
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		if p.tok.kind != tDotDot {
			return Value{At: at, Kind: ValInt, Int: lo}, nil
		}
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		if p.tok.kind != tNumber {
			return Value{}, p.errf(p.tok.pos, "expected range upper bound, got %s", p.tok.kind)
		}
		hi := p.tok.num
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		if hi <= lo {
			return Value{}, p.errf(at, "empty range %#x..%#x (upper bound is exclusive)", lo, hi)
		}
		return Value{At: at, Kind: ValRange, Int: lo, Hi: hi}, nil

	case tIdent:
		v := Value{At: at, Kind: ValWord, Str: p.tok.text}
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		return v, nil

	case tString:
		v := Value{At: at, Kind: ValQuoted, Str: p.tok.text}
		if err := p.advance(); err != nil {
			return Value{}, err
		}
		return v, nil
	}
	return Value{}, p.errf(at, "expected a number, name or string after the operator, got %s", p.tok.kind)
}
