package lang

import (
	"fmt"
	"regexp"
	"strings"

	"e9patch/internal/x86"
)

// Node is a typed match-expression AST node. Position survives
// parsing so the typechecker and compiler report file-accurate
// diagnostics.
type Node interface {
	Pos() Pos
	dump(b *strings.Builder, indent int)
}

// ValKind discriminates comparison values.
type ValKind int

const (
	// ValInt is a single integer literal.
	ValInt ValKind = iota
	// ValRange is a half-open integer range lo..hi.
	ValRange
	// ValWord is a bare identifier (mnemonic or register name).
	ValWord
	// ValQuoted is a quoted string (regex source for asm=).
	ValQuoted
)

// Value is the right-hand side of a comparison.
type Value struct {
	At   Pos
	Kind ValKind
	Int  uint64 // ValInt / ValRange low bound
	Hi   uint64 // ValRange high bound (exclusive)
	Str  string // ValWord / ValQuoted
}

func (v Value) String() string {
	switch v.Kind {
	case ValInt:
		return fmt.Sprintf("%#x", v.Int)
	case ValRange:
		return fmt.Sprintf("%#x..%#x", v.Int, v.Hi)
	case ValQuoted:
		return fmt.Sprintf("%q", v.Str)
	}
	return v.Str
}

// Term is a bare boolean attribute ("jcc", "heapwrite", ...).
type Term struct {
	At   Pos
	Name string

	fn func(*x86.Inst) bool // bound by the typechecker
}

// Rel is an attribute comparison ("addr>=0x1000", `asm="mov.*"`).
type Rel struct {
	At   Pos
	Attr string
	Op   string // "=", "!=", "<", ">", "<=", ">="
	Val  Value

	// Typechecker annotations: exactly one accessor is set, matching
	// the attribute's kind.
	intFn func(*x86.Inst) uint64
	strFn func(*x86.Inst) string
	regFn func(*x86.Inst) x86.Reg
	re    *regexp.Regexp // compiled anchored regex for asm=
	reg   x86.Reg        // resolved register for base=/index=
}

// Not negates its operand.
type Not struct {
	At Pos
	X  Node
}

// And is conjunction.
type And struct {
	At   Pos
	X, Y Node
}

// Or is disjunction.
type Or struct {
	At   Pos
	X, Y Node
}

func (n *Term) Pos() Pos { return n.At }
func (n *Rel) Pos() Pos  { return n.At }
func (n *Not) Pos() Pos  { return n.At }
func (n *And) Pos() Pos  { return n.At }
func (n *Or) Pos() Pos   { return n.At }

func pad(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

func (n *Term) dump(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "term %s :bool\n", n.Name)
}

func (n *Rel) dump(b *strings.Builder, indent int) {
	pad(b, indent)
	switch {
	case n.intFn != nil:
		fmt.Fprintf(b, "cmp %s %s %s :int\n", n.Attr, n.Op, n.Val)
	case n.re != nil:
		fmt.Fprintf(b, "cmp %s %s %s :str(regex)\n", n.Attr, n.Op, n.Val)
	case n.strFn != nil:
		fmt.Fprintf(b, "cmp %s %s %s :str\n", n.Attr, n.Op, n.Val)
	case n.regFn != nil:
		fmt.Fprintf(b, "cmp %s %s %s :reg\n", n.Attr, n.Op, n.Val)
	default:
		fmt.Fprintf(b, "cmp %s %s %s :unchecked\n", n.Attr, n.Op, n.Val)
	}
}

func (n *Not) dump(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("not :bool\n")
	n.X.dump(b, indent+1)
}

func (n *And) dump(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("and :bool\n")
	n.X.dump(b, indent+1)
	n.Y.dump(b, indent+1)
}

func (n *Or) dump(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("or :bool\n")
	n.X.dump(b, indent+1)
	n.Y.dump(b, indent+1)
}

// DumpNode renders the typed AST, one node per line, children
// indented — the e9dump -spec format.
func DumpNode(n Node) string {
	var b strings.Builder
	n.dump(&b, 0)
	return b.String()
}
