package lang

import (
	"regexp"
	"sort"
	"strings"

	"e9patch/internal/e9err"
	"e9patch/internal/x86"
)

// Attribute tables. Every accessor is a pure function of the single
// instruction it is handed — the property that makes compiled
// selectors shard-safe (see compile.go).

var boolTerms = map[string]func(*x86.Inst) bool{
	"true":      func(*x86.Inst) bool { return true },
	"false":     func(*x86.Inst) bool { return false },
	"jump":      (*x86.Inst).IsJmp,
	"jcc":       (*x86.Inst).IsJcc,
	"branch":    func(i *x86.Inst) bool { return i.IsJmp() || i.IsJcc() },
	"call":      (*x86.Inst).IsCall,
	"ret":       (*x86.Inst).IsRet,
	"indirect":  func(i *x86.Inst) bool { return (i.IsJmp() || i.IsCall()) && i.RelSize == 0 },
	"direct":    func(i *x86.Inst) bool { return i.RelSize != 0 },
	"memwrite":  (*x86.Inst).WritesMem,
	"heapwrite": (*x86.Inst).IsHeapWrite,
	"riprel":    func(i *x86.Inst) bool { return i.RIPRel },
	"mem":       (*x86.Inst).HasMem,
	"short":     func(i *x86.Inst) bool { return i.Len < 5 },
	"twobyte":   func(i *x86.Inst) bool { return i.TwoByte },
}

var intAttrs = map[string]func(*x86.Inst) uint64{
	"addr": func(i *x86.Inst) uint64 { return i.Addr },
	"len":  func(i *x86.Inst) uint64 { return uint64(i.Len) },
	"size": func(i *x86.Inst) uint64 { return uint64(i.Len) },
	"op":   func(i *x86.Inst) uint64 { return uint64(i.Opcode) },
	"target": func(i *x86.Inst) uint64 {
		if i.RelSize == 0 {
			return 0
		}
		return i.Target()
	},
	// imm and disp compare as the unsigned two's-complement image of
	// the sign-extended operand.
	"imm":   func(i *x86.Inst) uint64 { return uint64(i.Imm()) },
	"disp":  func(i *x86.Inst) uint64 { return uint64(i.Disp()) },
	"width": func(i *x86.Inst) uint64 { return uint64(i.OpWidth()) },
}

var strAttrs = map[string]func(*x86.Inst) string{
	"mnemonic": (*x86.Inst).Mnemonic,
	"asm":      (*x86.Inst).String,
}

var regAttrs = map[string]func(*x86.Inst) x86.Reg{
	"base":  func(i *x86.Inst) x86.Reg { return i.MemBase },
	"index": func(i *x86.Inst) x86.Reg { return i.MemIndex },
}

var regByName = func() map[string]x86.Reg {
	m := map[string]x86.Reg{"none": x86.NoReg}
	for r := x86.RAX; r <= x86.RIP; r++ {
		m[r.String()] = r
	}
	return m
}()

func names[V any](m map[string]V) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// check typechecks the AST in place, binding attribute accessors and
// compiling asm= regexes. Every failure is an e9err.ErrBadSpec with
// the offending node's position.
func check(n Node, phase string) error {
	bad := func(p Pos, format string, args ...any) error {
		return e9err.BadSpec(phase, p.Line, p.Col, format, args...)
	}
	switch n := n.(type) {
	case *Not:
		return check(n.X, phase)
	case *And:
		if err := check(n.X, phase); err != nil {
			return err
		}
		return check(n.Y, phase)
	case *Or:
		if err := check(n.X, phase); err != nil {
			return err
		}
		return check(n.Y, phase)

	case *Term:
		fn, ok := boolTerms[n.Name]
		if !ok {
			if _, isAttr := intAttrs[n.Name]; isAttr {
				return bad(n.At, "attribute %q needs a comparison (e.g. %s=0x1000)", n.Name, n.Name)
			}
			if _, isAttr := strAttrs[n.Name]; isAttr {
				return bad(n.At, "attribute %q needs a comparison (e.g. %s=mov)", n.Name, n.Name)
			}
			if _, isAttr := regAttrs[n.Name]; isAttr {
				return bad(n.At, "attribute %q needs a comparison (e.g. %s=rsp)", n.Name, n.Name)
			}
			return bad(n.At, "unknown term %q (boolean terms: %s)", n.Name, names(boolTerms))
		}
		n.fn = fn
		return nil

	case *Rel:
		if _, isBool := boolTerms[n.Attr]; isBool {
			return bad(n.At, "term %q takes no comparison", n.Attr)
		}
		if fn, ok := intAttrs[n.Attr]; ok {
			switch n.Val.Kind {
			case ValInt:
			case ValRange:
				if n.Op != "=" && n.Op != "!=" {
					return bad(n.Val.At, "ranges compare only with = or != (got %s)", n.Op)
				}
			default:
				return bad(n.Val.At, "attribute %q compares against numbers", n.Attr)
			}
			n.intFn = fn
			return nil
		}
		if fn, ok := strAttrs[n.Attr]; ok {
			if n.Op != "=" && n.Op != "!=" {
				return bad(n.At, "attribute %q compares only with = or != (got %s)", n.Attr, n.Op)
			}
			if n.Val.Kind != ValWord && n.Val.Kind != ValQuoted {
				return bad(n.Val.At, "attribute %q compares against a name or string", n.Attr)
			}
			n.strFn = fn
			if n.Attr == "asm" {
				// Anchored over the full AT&T rendering, matching
				// E9Tool's asm= semantics.
				re, err := regexp.Compile("^(?:" + n.Val.Str + ")$")
				if err != nil {
					return bad(n.Val.At, "bad asm regex: %v", err)
				}
				n.re = re
			}
			return nil
		}
		if fn, ok := regAttrs[n.Attr]; ok {
			if n.Op != "=" && n.Op != "!=" {
				return bad(n.At, "attribute %q compares only with = or != (got %s)", n.Attr, n.Op)
			}
			if n.Val.Kind != ValWord {
				return bad(n.Val.At, "attribute %q compares against a register name", n.Attr)
			}
			reg, ok := regByName[n.Val.Str]
			if !ok {
				return bad(n.Val.At, "unknown register %q (want %s)", n.Val.Str, names(regByName))
			}
			n.regFn = fn
			n.reg = reg
			return nil
		}
		return bad(n.At, "unknown attribute %q (int: %s; str: %s; reg: %s)",
			n.Attr, names(intAttrs), names(strAttrs), names(regAttrs))
	}
	return bad(n.Pos(), "internal: unknown node type")
}
