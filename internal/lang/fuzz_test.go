package lang

import (
	"errors"
	"testing"

	"e9patch/internal/e9err"
	"e9patch/internal/x86"
)

// FuzzMatchExpr feeds arbitrary bytes through every front-end entry
// point. The contract under fuzzing: no panic, and every failure is a
// classified ErrBadSpec (hostile text must never surface as a raw
// parse crash or an unclassified error). Accepted expressions must
// also evaluate without crashing.
func FuzzMatchExpr(f *testing.F) {
	seeds := []string{
		"jcc",
		"jcc & short",
		"call & indirect",
		"jump | jcc",
		"not (branch | ret) & addr=0x1000..0x2000",
		`asm="mov.*" & memwrite`,
		"mnemonic=nop | base=rdi index!=none",
		"addr!=0x0..0x1000 width>=4 imm=0x42",
		"match jcc\nexclude short\npatch call f(addr, asm) @p.elf\n",
		"patch counter=0x300000000",
		"call probe(addr, size, target, imm, next, 42) @x",
		"((((jcc))))",
		"jcc &",
		"\"unterminated",
		"addr=0x2..0x1",
		"# only a comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	classified := func(t *testing.T, err error, what string, src string) {
		if err != nil && !errors.Is(err, e9err.ErrBadSpec) {
			t.Errorf("%s(%q): unclassified error %v", what, src, err)
		}
	}
	// One decoded instruction to evaluate accepted programs against.
	a := x86.NewAsm(0x1000)
	a.MovMemImm8(x86.M(x86.RDI, 8), 7)
	code, err := a.Finish()
	if err != nil {
		f.Fatal(err)
	}
	inst, err := x86.Decode(code, 0x1000)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := CompileExpr(src)
		classified(t, err, "CompileExpr", src)
		if err == nil {
			p.Eval(&inst)
			if !p.ShardSafe() {
				t.Errorf("CompileExpr(%q): compiled program not shard-safe", src)
			}
		}
		_, err = ParsePatch(src)
		classified(t, err, "ParsePatch", src)
		sp, err := ParseSpec(src)
		classified(t, err, "ParseSpec", src)
		if err == nil {
			sp.Program().Eval(&inst)
			sp.Dump()
		}
	})
}
