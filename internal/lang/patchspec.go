package lang

import (
	"fmt"
	"strings"

	"e9patch/internal/trampoline"
)

// PatchKind enumerates the trampoline families a spec can request.
type PatchKind int

const (
	// PatchEmpty is the paper's overhead-measurement trampoline.
	PatchEmpty PatchKind = iota
	// PatchCounter increments a 64-bit counter at a fixed address.
	PatchCounter
	// PatchContextCall saves all registers and calls a fixed address.
	PatchContextCall
	// PatchLowfat inserts the LowFat pointer check (mitigation mode).
	PatchLowfat
	// PatchLowfatTrap is the LowFat check in trapping mode.
	PatchLowfatTrap
	// PatchCall saves caller-visible state and calls a named function
	// in an injected payload ELF, marshalling typed arguments.
	PatchCall
)

func (k PatchKind) String() string {
	switch k {
	case PatchEmpty:
		return "empty"
	case PatchCounter:
		return "counter"
	case PatchContextCall:
		return "contextcall"
	case PatchLowfat:
		return "lowfat"
	case PatchLowfatTrap:
		return "lowfat-trap"
	case PatchCall:
		return "call"
	}
	return fmt.Sprintf("patchkind(%d)", int(k))
}

// PatchSpec is a parsed patch directive.
type PatchSpec struct {
	Kind PatchKind
	// Addr is the counter/contextcall target address.
	Addr uint64
	// Fn names the payload function for call patches.
	Fn string
	// Args are the marshalled call arguments, in SysV register order.
	Args []trampoline.Arg
	// PayloadRef is the payload reference after '@' (a file name for
	// e9tool; advisory for the server, which receives payload bytes).
	PayloadRef string
	// Src is the directive's source text.
	Src string
}

// String renders the spec in directive syntax.
func (ps *PatchSpec) String() string {
	switch ps.Kind {
	case PatchCounter, PatchContextCall:
		return fmt.Sprintf("%s=%#x", ps.Kind, ps.Addr)
	case PatchCall:
		args := make([]string, len(ps.Args))
		for i, a := range ps.Args {
			args[i] = a.String()
		}
		s := fmt.Sprintf("call %s(%s)", ps.Fn, strings.Join(args, ", "))
		if ps.PayloadRef != "" {
			s += " @" + ps.PayloadRef
		}
		return s
	}
	return ps.Kind.String()
}

// callArgNames maps argument keywords to their marshalling kinds.
var callArgNames = map[string]trampoline.ArgKind{
	"addr":   trampoline.ArgAddr,
	"size":   trampoline.ArgSize,
	"len":    trampoline.ArgSize,
	"target": trampoline.ArgTarget,
	"imm":    trampoline.ArgImm,
	"next":   trampoline.ArgNext,
	"asm":    trampoline.ArgAsm,
}

// ParsePatch parses a patch directive ("call trace(addr)@payload.elf",
// "counter=0x300000000", "empty", ...). An empty string means empty.
func ParsePatch(src string) (*PatchSpec, error) {
	return parsePatchString(src, Pos{Line: 1, Col: 1}, "patch")
}

func parsePatchString(src string, base Pos, phase string) (*PatchSpec, error) {
	lx := newLexer(src, base, phase)
	tok, err := lx.next()
	if err != nil {
		return nil, err
	}
	ps := &PatchSpec{Src: strings.TrimSpace(src)}
	if tok.kind == tEOF {
		return ps, nil
	}
	if tok.kind != tIdent {
		return nil, lx.errf(tok.pos, "expected a patch kind, got %s", tok.kind)
	}
	expectEnd := func() error {
		end, err := lx.next()
		if err != nil {
			return err
		}
		if end.kind != tEOF {
			return lx.errf(end.pos, "unexpected %s %q after patch spec", end.kind, end.text)
		}
		return nil
	}
	parseAddr := func() (uint64, error) {
		eq, err := lx.next()
		if err != nil {
			return 0, err
		}
		if eq.kind != tEq {
			return 0, lx.errf(eq.pos, "%s needs a target address (%s=ADDR)", tok.text, tok.text)
		}
		num, err := lx.next()
		if err != nil {
			return 0, err
		}
		if num.kind != tNumber {
			return 0, lx.errf(num.pos, "expected an address after %s=, got %s", tok.text, num.kind)
		}
		return num.num, nil
	}

	switch tok.text {
	case "empty":
		return ps, expectEnd()
	case "counter":
		ps.Kind = PatchCounter
		if ps.Addr, err = parseAddr(); err != nil {
			return nil, err
		}
		return ps, expectEnd()
	case "contextcall":
		ps.Kind = PatchContextCall
		if ps.Addr, err = parseAddr(); err != nil {
			return nil, err
		}
		return ps, expectEnd()
	case "lowfat":
		ps.Kind = PatchLowfat
		return ps, expectEnd()
	case "lowfat-trap":
		ps.Kind = PatchLowfatTrap
		return ps, expectEnd()
	case "call":
		ps.Kind = PatchCall
		return ps, parseCall(lx, ps)
	}
	return nil, lx.errf(tok.pos,
		"unknown patch kind %q (want empty, counter=ADDR, contextcall=ADDR, lowfat, lowfat-trap or call FN(...))", tok.text)
}

func parseCall(lx *lexer, ps *PatchSpec) error {
	name, err := lx.next()
	if err != nil {
		return err
	}
	if name.kind != tIdent {
		return lx.errf(name.pos, "call needs a function name, got %s", name.kind)
	}
	ps.Fn = name.text
	open, err := lx.next()
	if err != nil {
		return err
	}
	if open.kind != tLParen {
		return lx.errf(open.pos, "expected '(' after call %s", ps.Fn)
	}
	tok, err := lx.next()
	if err != nil {
		return err
	}
	for tok.kind != tRParen {
		var arg trampoline.Arg
		switch tok.kind {
		case tIdent:
			kind, ok := callArgNames[tok.text]
			if !ok {
				return lx.errf(tok.pos, "unknown call argument %q (want %s or a number)",
					tok.text, names(callArgNames))
			}
			arg = trampoline.Arg{Kind: kind}
		case tNumber:
			arg = trampoline.Arg{Kind: trampoline.ArgStatic, Value: tok.num}
		default:
			return lx.errf(tok.pos, "expected a call argument, got %s", tok.kind)
		}
		if len(ps.Args) == len(trampoline.ArgRegs) {
			return lx.errf(tok.pos, "too many call arguments (at most %d fit the SysV integer registers)",
				len(trampoline.ArgRegs))
		}
		ps.Args = append(ps.Args, arg)
		if tok, err = lx.next(); err != nil {
			return err
		}
		if tok.kind == tComma {
			if tok, err = lx.next(); err != nil {
				return err
			}
			if tok.kind == tRParen {
				return lx.errf(tok.pos, "trailing comma in call arguments")
			}
		} else if tok.kind != tRParen {
			return lx.errf(tok.pos, "expected ',' or ')' in call arguments, got %s", tok.kind)
		}
	}
	end, err := lx.next()
	if err != nil {
		return err
	}
	switch end.kind {
	case tEOF:
		return nil
	case tAt:
		ref := lx.rest()
		if ref == "" {
			return lx.errf(end.pos, "'@' needs a payload reference")
		}
		ps.PayloadRef = ref
		return nil
	}
	return lx.errf(end.pos, "unexpected %s %q after call arguments (want '@payload' or end)", end.kind, end.text)
}
