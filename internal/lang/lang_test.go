package lang

import (
	"errors"
	"regexp"
	"strings"
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/e9err"
	"e9patch/internal/match"
	"e9patch/internal/trampoline"
	"e9patch/internal/x86"
)

// testInsts assembles a small program covering every attribute class:
//
//	0  nop                      addr 0x1000, len 1
//	1  movabs rax, 0x42         long immediate
//	2  mov byte [rdi+8], 7      memory write, base rdi
//	3  je 0x1000                short conditional jump, direct
//	4  jmp r11                  indirect jump
//	5  call 0x1000              direct call
//	6  ret
func testInsts(t *testing.T) []x86.Inst {
	t.Helper()
	a := x86.NewAsm(0x1000)
	top := a.NewLabel()
	a.Bind(top)
	a.Nop()
	a.MovRegImm64(x86.RAX, 0x42)
	a.MovMemImm8(x86.M(x86.RDI, 8), 7)
	a.JccShort(x86.CondE, top)
	a.JmpReg(x86.R11)
	a.CallRel32(0x1000)
	a.Ret()
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res := disasm.Linear(code, 0x1000)
	if res.BadBytes != 0 {
		t.Fatalf("test program has %d undecodable bytes", res.BadBytes)
	}
	if len(res.Insts) != 7 {
		t.Fatalf("test program decoded to %d instructions, want 7", len(res.Insts))
	}
	return res.Insts
}

// TestEvalAgainstHandPredicates compiles expressions and checks them
// instruction by instruction against hand-written predicates; want is
// the expected match count so no case passes vacuously.
func TestEvalAgainstHandPredicates(t *testing.T) {
	insts := testInsts(t)
	asmRe := regexp.MustCompile(`^(?:j.*)$`)
	cases := []struct {
		expr string
		want int
		fn   func(i *x86.Inst) bool
	}{
		{"true", 7, func(i *x86.Inst) bool { return true }},
		{"false", 0, func(i *x86.Inst) bool { return false }},
		{"jcc", 1, (*x86.Inst).IsJcc},
		{"jump", 1, (*x86.Inst).IsJmp},
		{"branch", 2, func(i *x86.Inst) bool { return i.IsJmp() || i.IsJcc() }},
		{"call", 1, (*x86.Inst).IsCall},
		{"ret", 1, (*x86.Inst).IsRet},
		{"indirect", 1, func(i *x86.Inst) bool { return (i.IsJmp() || i.IsCall()) && i.RelSize == 0 }},
		{"call & indirect", 0, func(i *x86.Inst) bool { return i.IsCall() && i.RelSize == 0 }},
		{"direct", 2, func(i *x86.Inst) bool { return i.RelSize != 0 }},
		{"memwrite", 1, (*x86.Inst).WritesMem},
		{"mem", 1, (*x86.Inst).HasMem},
		{"short", 5, func(i *x86.Inst) bool { return i.Len < 5 }},
		{"addr=0x1000", 1, func(i *x86.Inst) bool { return i.Addr == 0x1000 }},
		{"addr!=0x1000", 6, func(i *x86.Inst) bool { return i.Addr != 0x1000 }},
		{"addr=0x1000..0x100b", 2, func(i *x86.Inst) bool { return i.Addr >= 0x1000 && i.Addr < 0x100b }},
		{"addr!=0x1000..0x100b", 5, func(i *x86.Inst) bool { return i.Addr < 0x1000 || i.Addr >= 0x100b }},
		{"len>5", 1, func(i *x86.Inst) bool { return i.Len > 5 }},
		{"size<=2", 3, func(i *x86.Inst) bool { return i.Len <= 2 }},
		{"target=0x1000", 2, func(i *x86.Inst) bool { return i.RelSize != 0 && i.Target() == 0x1000 }},
		{"imm=0x42", 1, func(i *x86.Inst) bool { return uint64(i.Imm()) == 0x42 }},
		{"base=rdi", 1, func(i *x86.Inst) bool { return i.MemBase == x86.RDI }},
		{"base!=none", 1, func(i *x86.Inst) bool { return i.MemBase != x86.NoReg }},
		{"index=none", 7, func(i *x86.Inst) bool { return i.MemIndex == x86.NoReg }},
		{`asm="j.*"`, 2, func(i *x86.Inst) bool { return asmRe.MatchString(i.String()) }},
		{"mnemonic=ret", 1, func(i *x86.Inst) bool { return i.Mnemonic() == "ret" }},
		{"not branch", 5, func(i *x86.Inst) bool { return !(i.IsJmp() || i.IsJcc()) }},
		{"jcc | ret", 2, func(i *x86.Inst) bool { return i.IsJcc() || i.IsRet() }},
		// Implied and: adjacency binds like '&'.
		{"branch short", 2, func(i *x86.Inst) bool { return (i.IsJmp() || i.IsJcc()) && i.Len < 5 }},
		// Precedence: or is weaker than and.
		{"ret | call direct", 2, func(i *x86.Inst) bool { return i.IsRet() || (i.IsCall() && i.RelSize != 0) }},
		{"(ret | call) direct", 1, func(i *x86.Inst) bool { return (i.IsRet() || i.IsCall()) && i.RelSize != 0 }},
	}
	for _, c := range cases {
		p, err := CompileExpr(c.expr)
		if err != nil {
			t.Errorf("compile %q: %v", c.expr, err)
			continue
		}
		got := 0
		for i := range insts {
			ev, want := p.Eval(&insts[i]), c.fn(&insts[i])
			if ev != want {
				t.Errorf("%q on %s: eval=%t hand=%t", c.expr, insts[i].String(), ev, want)
			}
			if ev {
				got++
			}
		}
		if got != c.want {
			t.Errorf("%q matched %d instructions, want %d", c.expr, got, c.want)
		}
		if !p.ShardSafe() {
			t.Errorf("%q not shard-safe", c.expr)
		}
		if !match.Shardable(p.Selector()) {
			t.Errorf("%q selector not registered shardable", c.expr)
		}
	}
}

// TestBadExprPositions checks that parse and typecheck failures carry
// ErrBadSpec with 1-based line:column positions in both the reason and
// the message.
func TestBadExprPositions(t *testing.T) {
	cases := []struct {
		expr   string
		reason string // expected Reason (class:line:col)
		substr string // expected message fragment
	}{
		{"", "bad-spec:1:1", "expected a term"},
		{"jcc &", "bad-spec:1:6", ""},
		{"bogus", "bad-spec:1:1", "unknown term"},
		{"jcc bogus", "bad-spec:1:5", "unknown term"},
		{"addr", "bad-spec:1:1", "needs a comparison"},
		{"jcc=1", "bad-spec:1:1", "takes no comparison"},
		{"addr=jcc", "bad-spec:1:6", "against numbers"},
		{"addr<0x1..0x2", "bad-spec:1:6", "ranges compare only with = or !="},
		{"addr=0x2..0x2", "bad-spec:1:6", "empty range"},
		{"mnemonic<mov", "bad-spec:1:1", "only with = or !="},
		{`asm="("`, "bad-spec:1:5", "bad asm regex"},
		{"base=bogus", "bad-spec:1:6", "unknown register"},
		{"wut=1", "bad-spec:1:1", "unknown attribute"},
		{"(jcc", "bad-spec:1:5", ""},
		{"jcc)", "bad-spec:1:4", ""},
		{"addr=99999999999999999999", "bad-spec:1:6", ""},
	}
	for _, c := range cases {
		_, err := ParseExpr(c.expr)
		if err == nil {
			t.Errorf("ParseExpr(%q): no error", c.expr)
			continue
		}
		if !errors.Is(err, e9err.ErrBadSpec) {
			t.Errorf("ParseExpr(%q): not ErrBadSpec: %v", c.expr, err)
		}
		var ee *e9err.Error
		if !errors.As(err, &ee) {
			t.Errorf("ParseExpr(%q): not an *e9err.Error: %v", c.expr, err)
			continue
		}
		if ee.Reason != c.reason {
			t.Errorf("ParseExpr(%q): reason %q, want %q (msg: %s)", c.expr, ee.Reason, c.reason, ee.Msg)
		}
		if c.substr != "" && !strings.Contains(ee.Msg, c.substr) {
			t.Errorf("ParseExpr(%q): msg %q missing %q", c.expr, ee.Msg, c.substr)
		}
	}
}

// TestSpecFilePositions checks that spec-file errors point at the
// offending line and column of the file, not of the sub-expression.
func TestSpecFilePositions(t *testing.T) {
	cases := []struct {
		text   string
		reason string
		substr string
	}{
		{"match jcc\n\nexclude bogus\n", "bad-spec:3:9", "unknown term"},
		{"# c\nmatch jcc &\n", "bad-spec:2:12", ""},
		{"match jcc\nmatch ret\n", "bad-spec:2:1", "duplicate match"},
		{"match jcc\npatch empty\npatch empty\n", "bad-spec:3:1", "duplicate patch"},
		{"match jcc\npayload a\npayload b\n", "bad-spec:3:1", "duplicate payload"},
		{"match jcc\npayload\n", "bad-spec:2:8", "needs a reference"},
		{"frobnicate jcc\n", "bad-spec:1:1", "unknown directive"},
		{"patch empty\n", "bad-spec:1:1", "no match directive"},
		{"match jcc\npatch call f(x)\n", "bad-spec:2:14", "unknown call argument"},
		{"match jcc\npatch call f(addr) @a\npayload b\n", "bad-spec:1:1", "conflicting payload references"},
		{"  match  jcc bogus\n", "bad-spec:1:14", "unknown term"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.text)
		if err == nil {
			t.Errorf("ParseSpec(%q): no error", c.text)
			continue
		}
		var ee *e9err.Error
		if !errors.As(err, &ee) || !errors.Is(err, e9err.ErrBadSpec) {
			t.Errorf("ParseSpec(%q): not a classified bad-spec error: %v", c.text, err)
			continue
		}
		if ee.Reason != c.reason {
			t.Errorf("ParseSpec(%q): reason %q, want %q (msg: %s)", c.text, ee.Reason, c.reason, ee.Msg)
		}
		if c.substr != "" && !strings.Contains(ee.Msg, c.substr) {
			t.Errorf("ParseSpec(%q): msg %q missing %q", c.text, ee.Msg, c.substr)
		}
	}
}

// TestSpecExcludeComposition checks that exclusions subtract from the
// match set at the compiled-program level.
func TestSpecExcludeComposition(t *testing.T) {
	insts := testInsts(t)
	sp, err := ParseSpec("match branch\nexclude jcc\n")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := range insts {
		if sp.Program().Eval(&insts[i]) {
			if !insts[i].IsJmp() || insts[i].IsJcc() {
				t.Errorf("effective program matched %s", insts[i].String())
			}
			got++
		}
	}
	if got != 1 {
		t.Errorf("matched %d, want 1 (the indirect jmp)", got)
	}
	if !match.Shardable(sp.Selector()) {
		t.Error("composed selector not shardable")
	}

	// Two exclusions leave nothing.
	sp2, err := ParseSpec("match branch\nexclude jcc\nexclude jump\n")
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if sp2.Program().Eval(&insts[i]) {
			t.Errorf("doubly excluded program matched %s", insts[i].String())
		}
	}
}

func TestParsePatch(t *testing.T) {
	cases := []struct {
		src  string
		want PatchSpec
	}{
		{"", PatchSpec{Kind: PatchEmpty}},
		{"empty", PatchSpec{Kind: PatchEmpty}},
		{"counter=0x300000000", PatchSpec{Kind: PatchCounter, Addr: 0x3_0000_0000}},
		{"contextcall=0x1234", PatchSpec{Kind: PatchContextCall, Addr: 0x1234}},
		{"lowfat", PatchSpec{Kind: PatchLowfat}},
		{"lowfat-trap", PatchSpec{Kind: PatchLowfatTrap}},
		{"call f()", PatchSpec{Kind: PatchCall, Fn: "f"}},
		{"call trace(addr) @payload.elf", PatchSpec{
			Kind: PatchCall, Fn: "trace",
			Args:       []trampoline.Arg{{Kind: trampoline.ArgAddr}},
			PayloadRef: "payload.elf",
		}},
		{"call probe(addr, size, target, imm, next, 42)", PatchSpec{
			Kind: PatchCall, Fn: "probe",
			Args: []trampoline.Arg{
				{Kind: trampoline.ArgAddr}, {Kind: trampoline.ArgSize},
				{Kind: trampoline.ArgTarget}, {Kind: trampoline.ArgImm},
				{Kind: trampoline.ArgNext}, {Kind: trampoline.ArgStatic, Value: 42},
			},
		}},
		{"call f(len, asm)", PatchSpec{
			Kind: PatchCall, Fn: "f",
			Args: []trampoline.Arg{{Kind: trampoline.ArgSize}, {Kind: trampoline.ArgAsm}},
		}},
	}
	for _, c := range cases {
		ps, err := ParsePatch(c.src)
		if err != nil {
			t.Errorf("ParsePatch(%q): %v", c.src, err)
			continue
		}
		if ps.Kind != c.want.Kind || ps.Addr != c.want.Addr || ps.Fn != c.want.Fn || ps.PayloadRef != c.want.PayloadRef {
			t.Errorf("ParsePatch(%q) = %+v, want %+v", c.src, ps, c.want)
		}
		if len(ps.Args) != len(c.want.Args) {
			t.Errorf("ParsePatch(%q): %d args, want %d", c.src, len(ps.Args), len(c.want.Args))
			continue
		}
		for i := range ps.Args {
			if ps.Args[i] != c.want.Args[i] {
				t.Errorf("ParsePatch(%q): arg %d = %v, want %v", c.src, i, ps.Args[i], c.want.Args[i])
			}
		}
	}

	bad := []string{
		"bogus",
		"counter",
		"counter=",
		"counter=x",
		"call",
		"call f",
		"call f(",
		"call f(addr,)",
		"call f(addr addr)",
		"call f(a, b, c, d, e, f, g)",
		"call f(addr, addr, addr, addr, addr, addr, addr)",
		"call f() @",
		"empty trailing",
	}
	for _, src := range bad {
		if _, err := ParsePatch(src); err == nil {
			t.Errorf("ParsePatch(%q): no error", src)
		} else if !errors.Is(err, e9err.ErrBadSpec) {
			t.Errorf("ParsePatch(%q): not ErrBadSpec: %v", src, err)
		}
	}
}

// TestHostileInputLimits checks the resource caps on untrusted specs.
func TestHostileInputLimits(t *testing.T) {
	if _, err := ParseExpr("jcc | " + strings.Repeat("x", maxExprBytes)); err == nil {
		t.Error("oversized expression accepted")
	}
	if _, err := ParseSpec("match jcc\n# " + strings.Repeat("y", maxSpecBytes)); err == nil {
		t.Error("oversized spec accepted")
	}
	// Deep nesting must fail with a bounded error, not a stack overflow.
	deep := strings.Repeat("(", maxDepth+10) + "jcc" + strings.Repeat(")", maxDepth+10)
	if _, err := ParseExpr(deep); err == nil {
		t.Error("over-deep expression accepted")
	} else if !errors.Is(err, e9err.ErrBadSpec) {
		t.Errorf("over-deep expression: %v", err)
	}
	// Node-count cap: a long flat disjunction.
	wide := "jcc" + strings.Repeat(" | jcc", maxNodes)
	if _, err := ParseExpr(wide); err == nil {
		t.Error("over-wide expression accepted")
	}
	// At the legal edge both still work.
	ok := strings.Repeat("(", 50) + "jcc" + strings.Repeat(")", 50)
	if _, err := ParseExpr(ok); err != nil {
		t.Errorf("50-deep expression rejected: %v", err)
	}
}

func TestFromParts(t *testing.T) {
	sp, err := FromParts("call & indirect", "call trace(addr) @p.elf")
	if err != nil {
		t.Fatal(err)
	}
	if sp.PayloadRef != "p.elf" || sp.Patch.Kind != PatchCall {
		t.Errorf("FromParts: %+v", sp)
	}
	if sp.MatchSrc != "call & indirect" {
		t.Errorf("MatchSrc = %q", sp.MatchSrc)
	}
	if _, err := FromParts("bogus", ""); err == nil {
		t.Error("bad match accepted")
	}
	if _, err := FromParts("jcc", "bogus"); err == nil {
		t.Error("bad patch accepted")
	}
}

// TestDump spot-checks the e9dump -spec rendering.
func TestDump(t *testing.T) {
	sp, err := ParseSpec("match jcc & addr=0x0..0x1000\nexclude short\npatch counter=0x300000000\n")
	if err != nil {
		t.Fatal(err)
	}
	dump := sp.Dump()
	for _, want := range []string{
		"match jcc & addr=0x0..0x1000",
		"term jcc :bool",
		"cmp addr = ",
		"exclude short",
		"patch counter=0x300000000",
		"shardable (registered via match.Select; all ops pure)",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
