package plan

import (
	"bytes"
	"strings"
	"testing"
)

func TestBytesHexRoundTrip(t *testing.T) {
	p := &PatchPlan{
		Version: Version,
		Sites: []Site{{
			Addr:   0x401000,
			Tactic: "B2",
			Writes: []Write{{Addr: 0x401000, Data: Bytes{0xE9, 0x00, 0xAB, 0xCD, 0xEF}}},
		}},
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc, []byte(`"e900abcdef"`)) {
		t.Errorf("machine code not hex-encoded:\n%s", enc)
	}
	q, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Sites[0].Writes[0].Data, p.Sites[0].Writes[0].Data) {
		t.Errorf("bytes changed across round trip: %x", q.Sites[0].Writes[0].Data)
	}
}

func TestDecodeRejectsBadHex(t *testing.T) {
	var b Bytes
	if err := b.UnmarshalJSON([]byte(`"zz"`)); err == nil {
		t.Error("bad hex: want error")
	}
	if err := b.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Error("non-string: want error")
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	p := &PatchPlan{Version: Version + 1}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("want version error, got %v", err)
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("malformed JSON: want error")
	}
}

func TestInputBinding(t *testing.T) {
	in := []byte{1, 2, 3}
	p := &PatchPlan{Version: Version}
	if err := p.CheckInput(in); err != nil {
		t.Errorf("unbound plan should accept any input: %v", err)
	}
	p.BindInput(in)
	if err := p.CheckInput(in); err != nil {
		t.Errorf("bound plan rejects its own input: %v", err)
	}
	if err := p.CheckInput([]byte{1, 2, 4}); err == nil {
		t.Error("bound plan accepted a different input")
	}
}

func TestAggregates(t *testing.T) {
	p := &PatchPlan{
		Version: Version,
		Sites: []Site{
			{Tactic: "B2", Writes: []Write{{Data: Bytes{1, 2, 3}}},
				Trampolines: []Trampoline{{Addr: 1}}},
			{Tactic: "T2", Writes: []Write{{Data: Bytes{4}}, {Data: Bytes{5, 6}}},
				Trampolines: []Trampoline{{Addr: 2}, {Addr: 3, Evictee: true}}},
			{Tactic: "none"},
			{Tactic: "B2"},
		},
	}
	tc := p.TacticCounts()
	if tc["B2"] != 2 || tc["T2"] != 1 || tc["none"] != 1 {
		t.Errorf("TacticCounts = %v", tc)
	}
	if got := p.TrampolineCount(); got != 3 {
		t.Errorf("TrampolineCount = %d, want 3", got)
	}
	if got := p.PatchedBytes(); got != 6 {
		t.Errorf("PatchedBytes = %d, want 6", got)
	}
}

// TestEncodeDeterminism pins that two structurally equal plans encode
// to identical bytes (structs only, fixed field order, no maps).
func TestEncodeDeterminism(t *testing.T) {
	mk := func() *PatchPlan {
		return &PatchPlan{
			Version: Version, Bias: 0x1000, TextAddr: 0x401000, TextLen: 64,
			Granularity: 1, Insts: 9, Warnings: []string{"w"},
			Sites: []Site{{Addr: 0x401000, Tactic: "B0",
				SigTab: []SigEntry{{Int3: 0x401000, Trampoline: 0x500000}}}},
		}
	}
	a, err := mk().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("equal plans encoded differently")
	}
}
