// Package plan defines the serializable patch-plan IR that joins the
// rewriter's two phases: Plan (all decisions — tactic selection, pun
// and prefix choices, eviction chains, trampoline placement — made
// against the input bytes) and Apply (a decision-free materializer
// that replays the recorded decisions onto the input and reproduces
// the rewritten binary byte-for-byte).
//
// A PatchPlan is a pure function of the input binary and the rewrite
// configuration: planning the same binary twice yields byte-identical
// encodings. That makes plans content-addressable artefacts — a few
// kilobytes that can be cached, diffed, audited, or shipped to another
// machine and applied there, instead of the megabyte-scale output
// binary they describe.
//
// The package is a leaf: it depends only on the standard library, so
// every layer (patch core, public API, server, tools) can share the IR
// without import cycles.
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"e9patch/internal/e9err"
)

// Version is the plan schema version understood by this build. Decode
// rejects any other value: a plan is an exact replay script, so there
// is no forward- or backward-compatible interpretation of a mismatch.
const Version = 1

// Bytes is a byte slice that serializes as a lowercase hex string, so
// machine code stays greppable in the JSON form.
type Bytes []byte

// MarshalJSON implements json.Marshaler.
func (b Bytes) MarshalJSON() ([]byte, error) {
	return json.Marshal(hex.EncodeToString(b))
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bytes) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	*b = raw
	return nil
}

// Write is one committed byte edit inside the text section, in runtime
// coordinates (load bias included).
type Write struct {
	Addr uint64 `json:"addr"`
	Data Bytes  `json:"data"`
}

// Trampoline is one trampoline the plan places: its virtual address,
// the patched (or evicted) instruction it serves, and the emitted code.
type Trampoline struct {
	Addr    uint64 `json:"addr"`
	For     uint64 `json:"for"`
	Evictee bool   `json:"evictee,omitempty"`
	Code    Bytes  `json:"code"`
}

// SigEntry is one B0 dispatch-table binding: the int3 address and the
// trampoline the SIGTRAP handler must redirect to.
type SigEntry struct {
	Int3       uint64 `json:"int3"`
	Trampoline uint64 `json:"trampoline"`
}

// Injection is one extra memory image the plan maps into the output
// binary's address space, in runtime coordinates: user payload ELF
// segments and the call trampoline's argument tables. Injections are
// loaded alongside the trampoline pages and never overlap the input's
// own segments (Apply revalidates this).
type Injection struct {
	Addr uint64 `json:"addr"`
	Data Bytes  `json:"data"`
}

// Site records the complete decision for one patch location, in patch
// (descending-address) order. A failed location is recorded too — with
// tactic "none" and no effects — so per-location outcomes and
// statistics survive the round trip.
type Site struct {
	// Addr is the patch instruction's runtime address.
	Addr uint64 `json:"addr"`
	// Tactic is the methodology that succeeded ("B1", "B2", "T1",
	// "T2", "T3", "B0") or "none".
	Tactic string `json:"tactic"`
	// Pad is the redundant-prefix count chosen for the patch jump
	// (the T1 prefix choice; 0 for unpadded placements).
	Pad int `json:"pad,omitempty"`
	// Writes are the committed text edits, in commit order. For T2/T3
	// the victim's eviction jump precedes the patch jump, preserving
	// the evictee chain.
	Writes []Write `json:"writes,omitempty"`
	// Trampolines are the trampolines emitted for this site, evictee
	// trampolines included, in emission order.
	Trampolines []Trampoline `json:"trampolines,omitempty"`
	// SigTab holds the site's B0 dispatch entries (at most one today).
	SigTab []SigEntry `json:"sigtab,omitempty"`
}

// PatchPlan is the full rewrite decision record for one input binary.
type PatchPlan struct {
	// Version is the schema version (see Version).
	Version int `json:"version"`
	// InputSHA256 binds the plan to its input binary; Apply refuses
	// any other input. Empty means unbound (hand-authored plans).
	InputSHA256 string `json:"inputSha256,omitempty"`
	// Bias is the load bias used while planning (PIEBase for PIE).
	Bias uint64 `json:"bias"`
	// TextAddr is the runtime virtual address of .text (bias included);
	// TextLen its size. Apply validates both against the input.
	TextAddr uint64 `json:"textAddr"`
	TextLen  int    `json:"textLen"`
	// Granularity is the physical-page-grouping block size in pages
	// (negative: grouping disabled, naïve one-to-one emission).
	Granularity int `json:"granularity"`
	// SkipPrefix mirrors Config.SkipPrefix, for audit only.
	SkipPrefix uint64 `json:"skipPrefix,omitempty"`
	// Disasm names the instruction-recovery mode the plan was made
	// under ("linear", "superset", "superset-cet"; empty means linear,
	// for plans predating pluggable modes). DisasmDigest fingerprints
	// the recovered instruction universe (see disasm.UniverseDigest):
	// Apply re-derives it under the same mode and refuses a plan whose
	// universe differs — a plan emitted under one mode cannot be
	// replayed under another.
	Disasm       string `json:"disasm,omitempty"`
	DisasmDigest string `json:"disasmDigest,omitempty"`
	// Insts and BadBytes record the disassembly outcome the decisions
	// were made against.
	Insts    int `json:"insts"`
	BadBytes int `json:"badBytes,omitempty"`
	// Warnings carries the non-fatal diagnostics of the plan phase.
	Warnings []string `json:"warnings,omitempty"`
	// Injections are the extra memory images the plan maps (payload
	// ELF segments, argument tables), in configuration order.
	Injections []Injection `json:"injections,omitempty"`
	// Sites are the per-location decisions in patch order.
	Sites []Site `json:"sites"`
}

// Encode renders the plan as deterministic, indented JSON (struct
// field order is fixed and no maps are involved, so identical plans
// encode to identical bytes).
func (p *PatchPlan) Encode() ([]byte, error) {
	j, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("plan: encode: %w", err)
	}
	return append(j, '\n'), nil
}

// Decode parses an encoded plan and checks the schema version. A
// syntactically broken plan is a malformed input; a well-formed plan
// with the wrong schema version is an unsupported one.
func Decode(data []byte) (*PatchPlan, error) {
	var p PatchPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, e9err.Wrap(e9err.ErrMalformed, "plan", fmt.Errorf("plan: decode: %w", err))
	}
	if p.Version != Version {
		return nil, e9err.Unsupported("plan", fmt.Sprintf("plan: unsupported version %d (this build understands %d)", p.Version, Version))
	}
	return &p, nil
}

// InputDigest returns the hex SHA-256 a plan uses to bind its input.
func InputDigest(input []byte) string {
	h := sha256.Sum256(input)
	return hex.EncodeToString(h[:])
}

// BindInput records the digest of the input binary the plan was made
// for.
func (p *PatchPlan) BindInput(input []byte) { p.InputSHA256 = InputDigest(input) }

// CheckInput verifies input matches the bound digest. Unbound plans
// (empty InputSHA256) pass vacuously.
func (p *PatchPlan) CheckInput(input []byte) error {
	if p.InputSHA256 == "" {
		return nil
	}
	if got := InputDigest(input); got != p.InputSHA256 {
		return e9err.Malformed("apply", fmt.Sprintf("plan: input mismatch: plan bound to sha256 %s, input is %s", p.InputSHA256, got))
	}
	return nil
}

// TacticCounts aggregates the per-site tactics by name.
func (p *PatchPlan) TacticCounts() map[string]int {
	out := make(map[string]int)
	for i := range p.Sites {
		out[p.Sites[i].Tactic]++
	}
	return out
}

// TrampolineCount returns the number of trampolines the plan places.
func (p *PatchPlan) TrampolineCount() int {
	n := 0
	for i := range p.Sites {
		n += len(p.Sites[i].Trampolines)
	}
	return n
}

// PatchedBytes returns the total number of text bytes the plan edits,
// an audit measure of rewrite footprint.
func (p *PatchPlan) PatchedBytes() int {
	n := 0
	for i := range p.Sites {
		for _, w := range p.Sites[i].Writes {
			n += len(w.Data)
		}
	}
	return n
}
