package patch

import "e9patch/internal/plan"

// The emit half of the rewriter. The tactic functions in tactics.go
// and evict.go only decide — compute pun windows, probe placements,
// pick victims; every committed effect (a text write, a trampoline, a
// dispatch-table entry) funnels through the methods here, which both
// mutate the working image and record the effect into the current
// site's plan entry. The recorded plan is therefore exactly the
// decision stream, and replaying it (e9patch.Apply) reproduces the
// output without re-running any decision logic.

// beginSite opens the plan record for one patch location; endSite
// seals it with the tactic outcome. Everything committed in between is
// attributed to this site. With Options.SkipPlan no record is opened,
// and every recording site below already guards on r.cur.
func (r *Rewriter) beginSite(addr uint64) {
	if r.opts.SkipPlan {
		return
	}
	r.cur = &plan.Site{Addr: addr}
}

func (r *Rewriter) endSite(tactic Tactic) {
	if r.cur == nil {
		return
	}
	r.cur.Tactic = tactic.String()
	r.sites = append(r.sites, *r.cur)
	r.cur = nil
}

// notePad records the prefix-pad choice of the successful patch jump.
func (r *Rewriter) notePad(pad int) {
	if r.cur != nil {
		r.cur.Pad = pad
	}
}

// writeCode commits b at addr in the working image and records the
// edit. All text mutations that survive into the output go through
// here; scratch overlays used while probing (e.g. T2's hypothetical
// eviction bytes) write r.code directly and are restored before any
// decision escapes.
func (r *Rewriter) writeCode(addr uint64, b []byte) {
	o := r.off(addr)
	copy(r.code[o:o+len(b)], b)
	if r.cur != nil {
		data := make(plan.Bytes, len(b))
		copy(data, b)
		r.cur.Writes = append(r.cur.Writes, plan.Write{Addr: addr, Data: data})
	}
}

// addTrampoline appends emitted trampolines to the rewriter's output
// and to the current site's record, in the same order — the flattened
// plan preserves the exact trampoline sequence the grouping phase
// consumes.
func (r *Rewriter) addTrampoline(ts ...Trampoline) {
	r.trampolines = append(r.trampolines, ts...)
	for i := range ts {
		r.trampBytes += int64(len(ts[i].Code))
	}
	if r.opts.TrampolineBudget > 0 && r.trampBytes > r.opts.TrampolineBudget {
		r.limited = true
	}
	if r.cur != nil {
		for _, t := range ts {
			r.cur.Trampolines = append(r.cur.Trampolines, plan.Trampoline{
				Addr: t.Addr, For: t.ForAddr, Evictee: t.Evictee, Code: plan.Bytes(t.Code),
			})
		}
	}
}

// addSigTab registers a B0 dispatch-table binding.
func (r *Rewriter) addSigTab(int3, tramp uint64) {
	r.sigTab[int3] = tramp
	if r.cur != nil {
		r.cur.SigTab = append(r.cur.SigTab, plan.SigEntry{Int3: int3, Trampoline: tramp})
	}
}

// commitJump writes the jump bytes and updates the lock state: modified
// bytes and punned bytes both lock; instruction bytes beyond the jump
// stay untouched and unlocked (Figure 1's byte 2 discussion).
func (r *Rewriter) commitJump(addr uint64, instLen int, w punWindow, jmp []byte) {
	writeLen := minI(instLen, w.jumpLen)
	r.writeCode(addr, jmp[:writeLen])
	r.lock(addr, writeLen) // modified
	if w.jumpLen > instLen {
		r.lock(addr+uint64(instLen), w.jumpLen-instLen) // punned
	}
}
