package patch

import (
	"bytes"
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/va"
	"e9patch/internal/x86"
)

const testTextAddr = 0x401000

// newTestRewriter assembles code at testTextAddr, reserves a non-PIE
// style layout, and returns a rewriter plus the decoded instructions.
func newTestRewriter(t *testing.T, build func(a *x86.Asm), opts Options) (*Rewriter, []x86.Inst) {
	t.Helper()
	a := x86.NewAsm(testTextAddr)
	build(a)
	code := a.MustFinish()
	res := disasm.Linear(code, testTextAddr)
	if res.BadBytes != 0 {
		t.Fatalf("test code does not decode cleanly: %d bad bytes", res.BadBytes)
	}
	space := va.NewDefault()
	// Reserve the load image: ELF headers page through text end plus a
	// data page.
	loadEnd := testTextAddr + uint64(len(code))
	loadEnd = (loadEnd + 0xFFF) &^ 0xFFF
	loadEnd += 0x2000 // data+bss
	if err := space.Reserve(0x400000, loadEnd); err != nil {
		t.Fatal(err)
	}
	r := New(code, testTextAddr, res.Insts, space, loadEnd, opts)
	return r, res.Insts
}

// decodeJumpChain decodes the instruction at addr in the patched code
// and follows one direct jump, returning the decoded instruction.
func decodeAtAddr(t *testing.T, r *Rewriter, addr uint64) x86.Inst {
	t.Helper()
	off := int(addr - r.textAddr)
	in, err := x86.Decode(r.code[off:], addr)
	if err != nil {
		t.Fatalf("decode at %#x: %v", addr, err)
	}
	return in
}

func trampFor(t *testing.T, r *Rewriter, forAddr uint64, evictee bool) *Trampoline {
	t.Helper()
	for i := range r.trampolines {
		tr := &r.trampolines[i]
		if tr.ForAddr == forAddr && tr.Evictee == evictee {
			return tr
		}
	}
	t.Fatalf("no trampoline for %#x (evictee=%v)", forAddr, evictee)
	return nil
}

func TestB1DirectJump(t *testing.T) {
	// A 6-byte jcc rel32 is patched with a plain jump (B1).
	r, insts := newTestRewriter(t, func(a *x86.Asm) {
		l := a.NewLabel()
		a.Jcc(x86.CondE, l) // 6 bytes
		a.Bind(l)
		a.Ret()
	}, Options{})
	stats := r.PatchAll([]int{0})
	if stats.ByTactic[TacticB1] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	in := decodeAtAddr(t, r, insts[0].Addr)
	if !in.IsJmp() || in.RelSize != 4 {
		t.Fatal("patched instruction is not a near jump")
	}
	tr := trampFor(t, r, insts[0].Addr, false)
	if in.Target() != tr.Addr {
		t.Errorf("jump target %#x, want trampoline %#x", in.Target(), tr.Addr)
	}
	// The trampoline holds the displaced jcc + fallthrough jump.
	tin, err := x86.Decode(tr.Code, tr.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if !tin.IsJcc() || tin.Target() != insts[0].Target() {
		t.Error("trampoline does not emulate the displaced jcc")
	}
}

// figure1Prefix assembles the paper's Figure 1 instruction sequence:
//
//	Ins1: mov %rax,(%rbx)   48 89 03
//	Ins2: add $32,%rax      48 83 c0 20
//	Ins3: xor %rax,%rcx     48 31 c1
//	Ins4: cmpl $77,-4(%rbx) 83 7b fc 4d
func figure1(a *x86.Asm) {
	a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
	a.AddRegImm64(x86.RAX, 32)
	a.XorRegReg64(x86.RCX, x86.RAX)
	a.CmpMemImm8(x86.M(x86.RBX, -4), 77)
	a.Ret()
}

func TestFigure1T1PaddedJump(t *testing.T) {
	// For Ins1 (3 bytes), B2's window is rel32=0x8348XXXX (negative →
	// unreachable for a non-PIE binary) and T1(a)'s is 0xc08348XX
	// (also negative); T1(b) pins rel32=0x20c08348, which is positive
	// and must succeed — exactly the paper's walkthrough.
	r, insts := newTestRewriter(t, figure1, Options{})
	stats := r.PatchAll([]int{0})
	if stats.ByTactic[TacticT1] != 1 {
		t.Fatalf("want T1 success, stats = %+v (results %+v)", stats, r.Results())
	}
	in := decodeAtAddr(t, r, insts[0].Addr)
	if !in.IsJmp() {
		t.Fatal("patch site does not decode as a jump")
	}
	if in.NPrefix != 2 {
		t.Errorf("padding prefixes = %d, want 2", in.NPrefix)
	}
	wantTarget := insts[0].Addr + 7 + 0x20c08348
	tr := trampFor(t, r, insts[0].Addr, false)
	if tr.Addr != wantTarget {
		t.Errorf("trampoline at %#x, want %#x (rel32=0x20c08348)", tr.Addr, wantTarget)
	}
	if in.Target() != tr.Addr {
		t.Errorf("jump target %#x != trampoline %#x", in.Target(), tr.Addr)
	}
	// Ins2..Ins4 bytes beyond the 7-byte jump are unchanged.
	if !bytes.Equal(r.code[7:], insts[1].Bytes[3:]) {
		// insts[1] is 4 bytes starting at offset 3; jump covers 0..6.
	}
	if r.code[7] != 0x48 || r.code[8] != 0x31 {
		t.Error("bytes after the padded jump were modified")
	}
}

func TestB2PIE(t *testing.T) {
	// The same Figure 1 sequence in a PIE binary: negative rel32 is
	// reachable, so plain B2 succeeds.
	a := x86.NewAsm(0x5555_5555_5000)
	figure1(a)
	code := a.MustFinish()
	res := disasm.Linear(code, 0x5555_5555_5000)
	space := va.NewDefault()
	if err := space.Reserve(0x5555_5555_4000, 0x5555_5555_7000); err != nil {
		t.Fatal(err)
	}
	r := New(code, 0x5555_5555_5000, res.Insts, space, 0x5555_5555_7000, Options{})
	stats := r.PatchAll([]int{0})
	if stats.ByTactic[TacticB2] != 1 {
		t.Fatalf("want B2 success in PIE mode, stats = %+v", stats)
	}
	in := decodeAtAddr(t, r, res.Insts[0].Addr)
	tr := trampFor(t, r, res.Insts[0].Addr, false)
	if in.Target() != tr.Addr {
		t.Error("B2 jump does not reach its trampoline")
	}
	// The pun preserved Ins2's first two bytes as the rel32 suffix.
	if r.code[3] != 0x48 || r.code[4] != 0x83 {
		t.Error("punned bytes modified")
	}
}

func TestT2SuccessorEviction(t *testing.T) {
	// Patch instruction followed by a successor whose bytes force
	// negative rel32 for every pad (bytes 1..3 of the successor all >=
	// 0x80), so B2/T1 fail and T2 must evict the successor.
	r, insts := newTestRewriter(t, func(a *x86.Asm) {
		a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX) // 48 89 03
		// add $0xbbaa9988,%ebx = 81 c3 88 99 aa bb
		a.Raw(0x81, 0xC3, 0x88, 0x99, 0xAA, 0xBB)
		a.Ret()
	}, Options{})
	stats := r.PatchAll([]int{0})
	if stats.ByTactic[TacticT2] != 1 {
		t.Fatalf("want T2, stats = %+v results=%+v", stats, r.Results())
	}
	// The successor is now a jump to its evictee trampoline.
	succ := insts[1]
	sin := decodeAtAddr(t, r, succ.Addr)
	if !sin.IsJmp() {
		t.Fatal("successor not replaced by a jump")
	}
	ev := trampFor(t, r, succ.Addr, true)
	if sin.Target() != ev.Addr {
		t.Errorf("evictee jump %#x != trampoline %#x", sin.Target(), ev.Addr)
	}
	// The evictee trampoline executes the displaced successor then
	// jumps back to its successor.
	tin, err := x86.Decode(ev.Code, ev.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tin.Bytes, succ.Bytes) {
		t.Error("evictee trampoline does not start with the victim")
	}
	// And the patch site reaches its own trampoline.
	pin := decodeAtAddr(t, r, insts[0].Addr)
	tr := trampFor(t, r, insts[0].Addr, false)
	if pin.Target() != tr.Addr {
		t.Errorf("patch jump %#x != trampoline %#x", pin.Target(), tr.Addr)
	}
}

func TestT3NeighbourEviction(t *testing.T) {
	// Disable T2 and use the Figure 1 tail (xor + cmpl) as victim
	// material; with B2/T1 blocked by hostile successor bytes, T3 must
	// produce the double jump.
	r, insts := newTestRewriter(t, func(a *x86.Asm) {
		a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX) // patch target
		a.Raw(0x81, 0xC3, 0x88, 0x99, 0xAA, 0xBB) // hostile successor
		a.XorRegReg64(x86.RCX, x86.RAX)           // victim candidate
		a.CmpMemImm8(x86.M(x86.RBX, -4), 77)
		a.Ret()
	}, Options{DisableT2: true})
	stats := r.PatchAll([]int{0})
	if stats.ByTactic[TacticT3] != 1 {
		t.Fatalf("want T3, stats = %+v results=%+v", stats, r.Results())
	}
	// Patch site: short jump.
	pin := decodeAtAddr(t, r, insts[0].Addr)
	if !pin.IsJmp() || pin.RelSize != 1 {
		t.Fatal("patch site is not a short jump")
	}
	// Short jump lands on J_patch, a near jump to the patch trampoline.
	jp := decodeAtAddr(t, r, pin.Target())
	if !jp.IsJmp() || jp.RelSize != 4 {
		t.Fatal("J_patch is not a near jump")
	}
	tr := trampFor(t, r, insts[0].Addr, false)
	if jp.Target() != tr.Addr {
		t.Errorf("J_patch target %#x != patch trampoline %#x", jp.Target(), tr.Addr)
	}
	// Find the victim: some instruction now starts with J_victim.
	var victimAddr uint64
	for i := range r.trampolines {
		if r.trampolines[i].Evictee {
			victimAddr = r.trampolines[i].ForAddr
		}
	}
	if victimAddr == 0 {
		t.Fatal("no evictee trampoline emitted")
	}
	jv := decodeAtAddr(t, r, victimAddr)
	ev := trampFor(t, r, victimAddr, true)
	if !jv.IsJmp() || jv.Target() != ev.Addr {
		t.Errorf("J_victim target %#x != evictee trampoline %#x", jv.Target(), ev.Addr)
	}
	// J_patch must live strictly inside the victim (overlapping code).
	var victimLen int
	for _, in := range insts {
		if in.Addr == victimAddr {
			victimLen = in.Len
		}
	}
	if victimLen == 0 {
		t.Fatalf("victim %#x is not an instruction boundary", victimAddr)
	}
	if !(pin.Target() > victimAddr && pin.Target() < victimAddr+uint64(victimLen)) {
		t.Errorf("J_patch at %#x not inside victim [%#x,%#x)", pin.Target(), victimAddr, victimAddr+uint64(victimLen))
	}
}

func TestB0Fallback(t *testing.T) {
	// A single-byte instruction with a hostile successor and no
	// tactics: only the int3 fallback can patch it.
	r, insts := newTestRewriter(t, func(a *x86.Asm) {
		a.PushReg(x86.RAX)                        // 1 byte, patch target
		a.Raw(0x81, 0xC3, 0x88, 0x99, 0xAA, 0xBB) // hostile bytes
		a.Ret()
	}, Options{DisableT1: true, DisableT2: true, DisableT3: true, B0Fallback: true})
	stats := r.PatchAll([]int{0})
	if stats.ByTactic[TacticB0] != 1 {
		t.Fatalf("want B0, stats = %+v", stats)
	}
	if r.code[0] != 0xCC {
		t.Error("int3 not written")
	}
	tr := trampFor(t, r, insts[0].Addr, false)
	if got := r.SigTab()[insts[0].Addr]; got != tr.Addr {
		t.Errorf("sigtab entry %#x, want %#x", got, tr.Addr)
	}
}

func TestReverseOrderAdjacentPatches(t *testing.T) {
	// Patch Ins1 and Ins2 from Figure 1: S1 patches Ins2 first, so
	// Ins1's pun depends only on final bytes.
	r, insts := newTestRewriter(t, figure1, Options{})
	stats := r.PatchAll([]int{0, 1})
	if stats.Patched() != 2 {
		t.Fatalf("patched %d/2, stats=%+v results=%+v", stats.Patched(), stats, r.Results())
	}
	// Both patch sites must decode to jumps reaching their trampolines.
	for _, idx := range []int{0, 1} {
		in := decodeAtAddr(t, r, insts[idx].Addr)
		if in.Attrs&x86.AttrJump == 0 && in.RelSize == 0 {
			t.Fatalf("inst %d not a jump after patching", idx)
		}
		// Follow one short jump if T3 was used.
		if in.RelSize == 1 {
			in = decodeAtAddr(t, r, in.Target())
		}
		tr := trampFor(t, r, insts[idx].Addr, false)
		if in.Target() != tr.Addr {
			t.Errorf("inst %d jump %#x != trampoline %#x", idx, in.Target(), tr.Addr)
		}
	}
}

func TestFailedLocationUnchanged(t *testing.T) {
	// With everything disabled and hostile bytes, patching fails and
	// the bytes must be untouched.
	r, insts := newTestRewriter(t, func(a *x86.Asm) {
		a.MovMemReg64(x86.M(x86.RBX, 0), x86.RAX)
		a.Raw(0x81, 0xC3, 0x88, 0x99, 0xAA, 0xBB)
		a.Ret()
	}, Options{DisableT1: true, DisableT2: true, DisableT3: true})
	stats := r.PatchAll([]int{0})
	if stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if !bytes.Equal(r.code[:3], insts[0].Bytes) {
		t.Error("failed location was modified")
	}
	if len(r.Trampolines()) != 0 {
		t.Error("trampolines leaked for failed patch")
	}
}

func TestStatsPercentages(t *testing.T) {
	s := Stats{Total: 200}
	s.ByTactic[TacticB1] = 100
	s.ByTactic[TacticB2] = 40
	s.ByTactic[TacticT1] = 30
	s.ByTactic[TacticT3] = 20
	s.Failed = 10
	if got := s.BasePercent(); got != 70 {
		t.Errorf("Base%% = %v", got)
	}
	if got := s.SuccPercent(); got != 95 {
		t.Errorf("Succ%% = %v", got)
	}
	if s.Patched() != 190 {
		t.Errorf("Patched = %d", s.Patched())
	}
}

func TestPatchAllJumpsProgram(t *testing.T) {
	// A larger program: patch every jump (application A1) and verify
	// every success decodes to a working chain and every trampoline is
	// disjoint.
	r, insts := newTestRewriter(t, func(a *x86.Asm) {
		top := a.NewLabel()
		out := a.NewLabel()
		a.Bind(top)
		for i := 0; i < 30; i++ {
			skip := a.NewLabel()
			a.AddRegImm64(x86.RAX, int32(i))
			a.CmpRegImm64(x86.RAX, 100)
			a.JccShort(x86.CondL, skip)
			a.MovMemReg64(x86.M(x86.RBX, int32(i*8)), x86.RAX)
			a.Bind(skip)
			a.Jcc(x86.CondE, out)
		}
		a.Jmp(top)
		a.Bind(out)
		a.Ret()
	}, Options{})
	sel := disasm.SelectJumps(insts)
	if len(sel) < 60 {
		t.Fatalf("selector found %d jumps", len(sel))
	}
	stats := r.PatchAll(sel)
	if stats.Total != len(sel) {
		t.Fatalf("total %d != selected %d", stats.Total, len(sel))
	}
	if stats.SuccPercent() < 95 {
		t.Errorf("success rate %.1f%% too low; stats=%+v", stats.SuccPercent(), stats)
	}
	// All trampolines must be pairwise disjoint and outside the image.
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for _, tr := range r.Trampolines() {
		ivs = append(ivs, iv{tr.Addr, tr.Addr + uint64(len(tr.Code))})
		if tr.Addr >= testTextAddr && tr.Addr < testTextAddr+uint64(len(r.code)) {
			t.Fatalf("trampoline inside text at %#x", tr.Addr)
		}
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
				t.Fatalf("overlapping trampolines %x %x", ivs[i], ivs[j])
			}
		}
	}
}
