package patch

import (
	"e9patch/internal/va"
	"e9patch/internal/work"
)

// Region-parallel reverse-order patching.
//
// Every effect of patching one location reaches strictly forward from
// its address: the jump bytes written, the punned tail bytes read and
// locked, a T2 successor, and the farthest case — a T3 victim starting
// within +129 bytes, itself at most 15 bytes long, whose punned
// J_patch tail reads 5 more bytes (≤ +147 in total). Selected
// addresses separated by at least guardBand bytes therefore share no
// code bytes, no locks and no window inputs, and can be patched
// concurrently.
//
// Determinism is the hard constraint: the output must be byte-for-byte
// identical for every worker count. Two rules deliver it:
//
//  1. The region decomposition and the arena belt are functions of the
//     workload only (selected addresses, gap structure, address-space
//     geometry) — never of Options.Workers. Workers changes
//     scheduling, nothing else.
//
//  2. Regions never touch shared mutable state while speculating.
//     Each region patches against a private clone of the initial
//     address space plus a private bump arena for unconstrained
//     trampolines, journaling every clone reservation. A sequential
//     replay then commits the journals in fixed (descending) region
//     order: FindFree is first-fit, so any journaled range still free
//     in the shared space is exactly what a sequential run would have
//     chosen (adding reservations can only push first-fit results
//     upward, and the range itself being free pins it). A conflict —
//     another region got there first — resets the region's bytes and
//     locks and redoes it sequentially against the shared space, which
//     is equally deterministic.
const (
	// guardBand is the minimum gap between selected addresses of
	// adjacent regions; it strictly exceeds effectReach.
	guardBand = 256
	// effectReach bounds the forward reach of one patch (≤ 147 bytes,
	// see above; 160 adds margin). Redo resets this many bytes past a
	// region's highest selected address.
	effectReach = 160
	// arenaSize is each region's private trampoline arena. The belt of
	// up to maxRegions arenas stays ≤ 256 MiB so it cannot shadow the
	// distant pun windows small non-PIE binaries depend on.
	arenaSize = 8 << 20
	// maxRegions caps the decomposition.
	maxRegions = 32
	// defaultMinRegion is the default Options.MinRegionSize: regions
	// smaller than this are not worth a clone and an arena.
	defaultMinRegion = 64
)

// arena is a region's private bump allocator over a pre-reserved
// address range. Allocations from it need no address-space operations
// at all — the whole range is already reserved in every space — which
// keeps unconstrained (B1/B0 and most T2/T3 patch-side) trampolines
// off the replay journal entirely.
type arena struct {
	base, end, ptr uint64
}

// peek returns the next allocation address if it fits the arena and
// starts inside the pun window [winLo, winHi]. The caller bumps ptr
// only after the template emits successfully.
func (a *arena) peek(size, winLo, winHi uint64) (uint64, bool) {
	if a.ptr < winLo || a.ptr > winHi || a.ptr+size > a.end {
		return 0, false
	}
	return a.ptr, true
}

// spaceOp is one journaled address-space mutation.
type spaceOp struct {
	release bool
	lo, hi  uint64
}

// reserveVA reserves in the rewriter's space, journaling while
// speculating so the replay can re-validate against the shared space.
func (r *Rewriter) reserveVA(lo, hi uint64) error {
	if err := r.space.Reserve(lo, hi); err != nil {
		return err
	}
	if r.speculating {
		r.journal = append(r.journal, spaceOp{release: false, lo: lo, hi: hi})
	}
	return nil
}

// mustRelease backs out a reservation this rewriter made; failure is a
// state-tracking bug.
func (r *Rewriter) mustRelease(lo, hi uint64) {
	if err := r.space.Release(lo, hi); err != nil {
		panic("patch: inconsistent release: " + err.Error())
	}
	if r.speculating {
		r.journal = append(r.journal, spaceOp{release: true, lo: lo, hi: hi})
	}
}

// undoTrampoline backs out an uncommitted allocTrampoline result.
func (r *Rewriter) undoTrampoline(t uint64, size int, fromArena bool) {
	if fromArena {
		if r.arena == nil || r.arena.ptr != t+uint64(size) {
			panic("patch: arena undo out of order")
		}
		r.arena.ptr = t
		return
	}
	r.mustRelease(t, t+uint64(size))
}

// decompose splits the descending patch order into independently
// patchable regions: contiguous runs separated by gaps >= guardBand,
// packed into at most maxRegions groups of roughly equal size. The
// result depends only on the workload, never on Options.Workers.
func (r *Rewriter) decompose(order []int) [][]int {
	minRegion := r.opts.MinRegionSize
	if minRegion <= 0 {
		minRegion = defaultMinRegion
	}
	maxR := len(order) / minRegion
	if maxR > maxRegions {
		maxR = maxRegions
	}
	if maxR <= 1 {
		return [][]int{order}
	}
	// Cluster boundaries: indices where the descending address gap
	// reaches the guard band.
	cuts := []int{0}
	for i := 1; i < len(order); i++ {
		if r.insts[order[i-1]].Addr-r.insts[order[i]].Addr >= guardBand {
			cuts = append(cuts, i)
		}
	}
	if len(cuts) == 1 {
		return [][]int{order}
	}
	// Pack whole clusters into regions of ~len/maxR locations each.
	target := (len(order) + maxR - 1) / maxR
	var regions [][]int
	start := 0
	for k := 1; k <= len(cuts); k++ {
		end := len(order)
		if k < len(cuts) {
			end = cuts[k]
		}
		if end == len(order) || (end-start >= target && len(regions) < maxR-1) {
			regions = append(regions, order[start:end])
			start = end
		}
	}
	return regions
}

// child builds a rewriter for one region, sharing the (byte-disjoint)
// text, lock and instruction state while owning its space view, arena
// and outputs.
func (r *Rewriter) child(space *va.Space, ar *arena, hint uint64, speculating bool) *Rewriter {
	return &Rewriter{
		code:        r.code,
		textAddr:    r.textAddr,
		insts:       r.insts,
		locked:      r.locked,
		space:       space,
		opts:        r.opts,
		sigTab:      make(map[uint64]uint64),
		hint:        hint,
		arena:       ar,
		speculating: speculating,
	}
}

// runRegion patches one region's locations in descending order,
// polling for cancellation like the sequential path.
func (r *Rewriter) runRegion(order []int) {
	for i, idx := range order {
		if r.limited {
			return // trampoline budget exhausted; result is discarded
		}
		if r.opts.Cancel != nil && i&0xFF == 0 {
			select {
			case <-r.opts.Cancel:
				return
			default:
			}
		}
		r.patchOne(idx)
	}
}

// resetSpan restores a region's byte and lock state from the pristine
// pre-patch copies; the span covers every address the region's
// patching can have touched.
func (r *Rewriter) resetSpan(order []int, origCode []byte, origLocked []bool) {
	lo := r.insts[order[len(order)-1]].Addr // order is descending
	hi := r.insts[order[0]].Addr + effectReach
	o1 := r.off(lo)
	o2 := r.off(hi)
	if o2 > len(r.code) {
		o2 = len(r.code)
	}
	copy(r.code[o1:o2], origCode[o1:o2])
	copy(r.locked[o1:o2], origLocked[o1:o2])
}

// applyJournal replays one region's speculative space operations
// against the shared space. On a reservation conflict it unwinds the
// already-applied prefix and reports false; the region must be redone.
func (r *Rewriter) applyJournal(ops []spaceOp) bool {
	for i, op := range ops {
		var err error
		if op.release {
			err = r.space.Release(op.lo, op.hi)
		} else {
			err = r.space.Reserve(op.lo, op.hi)
		}
		if err == nil {
			continue
		}
		if op.release {
			// Journaled releases only cover this region's own earlier
			// reservations, which the prefix already applied.
			panic("patch: journal replay release failed: " + err.Error())
		}
		for j := i - 1; j >= 0; j-- {
			var uerr error
			if ops[j].release {
				uerr = r.space.Reserve(ops[j].lo, ops[j].hi)
			} else {
				uerr = r.space.Release(ops[j].lo, ops[j].hi)
			}
			if uerr != nil {
				panic("patch: journal unwind failed: " + uerr.Error())
			}
		}
		return false
	}
	return true
}

// patchRegions is the parallel S1 driver: speculate every region
// concurrently, then commit deterministically.
func (r *Rewriter) patchRegions(regions [][]int) {
	// Arena belt: one private arena per region, carved bottom-up above
	// the pool hint while regions descend through the text.
	arenas := make([]*arena, len(regions))
	cursor := r.hint
	for i := range regions {
		base, ok := r.space.FindFree(arenaSize, cursor, r.space.Max())
		if !ok || r.space.Reserve(base, base+arenaSize) != nil {
			// No room for a belt (pathologically full space): give back
			// what was carved and patch the regions sequentially.
			for j := 0; j < i; j++ {
				r.mustRelease(arenas[j].base, arenas[j].end)
			}
			for _, reg := range regions {
				r.runRegion(reg)
			}
			return
		}
		arenas[i] = &arena{base: base, end: base + arenaSize, ptr: base}
		cursor = base + arenaSize
	}
	beltEnd := cursor

	origCode := make([]byte, len(r.code))
	copy(origCode, r.code)
	origLocked := make([]bool, len(r.locked))
	copy(origLocked, r.locked)

	// Speculate: regions are byte-disjoint (guard band) and space-
	// disjoint (private clones and arenas), so they run in parallel
	// with no synchronisation beyond completion.
	subs := make([]*Rewriter, len(regions))
	work.ForEach(r.opts.Pool, r.opts.Workers, len(regions), func(i int) {
		sub := r.child(r.space.Clone(), arenas[i], beltEnd, true)
		sub.runRegion(regions[i])
		subs[i] = sub
	})

	// Commit: replay journals in descending region order; conflicts
	// redo the region against the shared space.
	for i, sub := range subs {
		if r.applyJournal(sub.journal) {
			continue
		}
		r.redone++
		r.resetSpan(regions[i], origCode, origLocked)
		arenas[i].ptr = arenas[i].base
		redo := r.child(r.space, arenas[i], beltEnd, false)
		redo.runRegion(regions[i])
		subs[i] = redo
	}

	// Merge region outputs — trampolines, per-location results and
	// plan fragments alike — in patch (descending) order, so the
	// recorded plan is identical to a sequential run's.
	for _, sub := range subs {
		r.trampBytes += sub.trampBytes
		if sub.limited || (r.opts.TrampolineBudget > 0 && r.trampBytes > r.opts.TrampolineBudget) {
			r.limited = true
		}
		r.trampolines = append(r.trampolines, sub.trampolines...)
		r.results = append(r.results, sub.results...)
		r.sites = append(r.sites, sub.sites...)
		r.stats.Total += sub.stats.Total
		r.stats.Failed += sub.stats.Failed
		for t := range sub.stats.ByTactic {
			r.stats.ByTactic[t] += sub.stats.ByTactic[t]
		}
		for k, v := range sub.sigTab {
			r.sigTab[k] = v
		}
	}
}
