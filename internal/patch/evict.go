package patch

import "e9patch/internal/x86"

// Tactics T2 (successor eviction) and T3 (neighbour eviction). Both
// replace a victim instruction with a jump to an evictee trampoline
// that executes the displaced victim and returns — changing the
// victim's byte representation without changing its semantics, and
// thereby unlocking puns that previously failed (§3.2, §3.3).

// trySuccessorEviction implements T2. The direct successor S of the
// patch instruction is evicted with a punned jump to an evictee
// trampoline, then B2/T1 are reapplied to the patch instruction against
// S's new bytes. Placement of S's trampoline is guided: several
// candidate addresses are probed because the low bytes of S's new rel32
// become the high (most constrained) bytes of the patch jump's rel32.
func (r *Rewriter) trySuccessorEviction(inst *x86.Inst) bool {
	succAddr := inst.Addr + uint64(inst.Len)
	sIdx, ok := r.instAt(succAddr)
	if !ok {
		return false
	}
	succ := &r.insts[sIdx]
	if !r.inText(succ.Addr, succ.Len) || r.anyLocked(succ.Addr, succ.Len) {
		return false
	}
	evSize, err := r.opts.EvictionTemplate.Size(succ)
	if err != nil {
		return false
	}
	patchSize, err := r.opts.Template.Size(inst)
	if err != nil {
		return false
	}

	for padS := 0; padS <= succ.Len-1; padS++ {
		wS, ok := r.computeWindow(r.code, succ.Addr, succ.Len, padS)
		if !ok {
			continue
		}
		for _, tS := range r.placementCandidates(uint64(evSize), wS) {
			if r.evictAndRepun(inst, succ, wS, tS, evSize, patchSize) {
				return true
			}
		}
	}
	return false
}

// evictAndRepun tries one candidate evictee placement tS for the
// successor: it overlays S's hypothetical jump bytes, re-puns the patch
// instruction against them, and commits both on success.
func (r *Rewriter) evictAndRepun(inst, succ *x86.Inst, wS punWindow, tS uint64, evSize, patchSize int) bool {
	oS := r.off(succ.Addr)
	jS := jumpBytes(r.code, oS, succ.Addr, succ.Len, wS, tS)

	// Temporarily overlay S's new bytes so window computation for the
	// patch instruction sees the post-eviction image.
	writeLen := minI(succ.Len, wS.jumpLen)
	saved := make([]byte, writeLen)
	copy(saved, r.code[oS:oS+writeLen])
	copy(r.code[oS:oS+writeLen], jS[:writeLen])
	restore := func() { copy(r.code[oS:oS+writeLen], saved) }

	for padI := 0; padI <= inst.Len-1; padI++ {
		wI, ok := r.computeWindow(r.code, inst.Addr, inst.Len, padI)
		if !ok {
			continue
		}
		tP, pCode, fromArena, ok := r.allocTrampoline(r.opts.Template, inst, patchSize, wI)
		if !ok {
			continue
		}
		// The patch trampoline may have claimed the candidate slot.
		if r.space.Occupied(tS, tS+uint64(evSize)) {
			r.undoTrampoline(tP, patchSize, fromArena)
			restore()
			return false
		}
		evCode, err := r.opts.EvictionTemplate.Emit(succ, tS)
		if err != nil || len(evCode) != evSize {
			r.undoTrampoline(tP, patchSize, fromArena)
			restore()
			return false
		}
		if err := r.reserveVA(tS, tS+uint64(evSize)); err != nil {
			r.undoTrampoline(tP, patchSize, fromArena)
			restore()
			return false
		}

		// Commit: S's eviction jump, then the re-punned patch jump.
		r.commitJump(succ.Addr, succ.Len, wS, jS)
		jI := jumpBytes(r.code, r.off(inst.Addr), inst.Addr, inst.Len, wI, tP)
		r.commitJump(inst.Addr, inst.Len, wI, jI)
		r.notePad(wI.pad)
		r.addTrampoline(
			Trampoline{Addr: tS, Code: evCode, ForAddr: succ.Addr, Evictee: true},
			Trampoline{Addr: tP, Code: pCode, ForAddr: inst.Addr},
		)
		return true
	}
	restore()
	return false
}

// placementCandidates returns up to T2Candidates starting addresses for
// an allocation of the given size inside the window, spread across the
// window so that the low-order address bytes vary (those bytes are what
// the dependent pun will be constrained by).
func (r *Rewriter) placementCandidates(size uint64, w punWindow) []uint64 {
	n := r.opts.T2Candidates
	out := r.space.Gaps(size, w.winLo, w.winHi, n/3+1)
	if w.winHi > w.winLo {
		span := w.winHi - w.winLo
		stride := span/uint64(n) + 1
		for i := 0; i < n && len(out) < n; i++ {
			lo := w.winLo + stride*uint64(i) + uint64(i*37)
			if lo > w.winHi {
				break
			}
			hi := lo + stride - 1
			if hi > w.winHi {
				hi = w.winHi
			}
			if c, ok := r.space.FindFree(size, lo, hi); ok {
				out = append(out, c)
			}
		}
	}
	// Deduplicate while preserving order.
	seen := make(map[uint64]bool, len(out))
	uniq := out[:0]
	for _, c := range out {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	if len(uniq) > n {
		uniq = uniq[:n]
	}
	return uniq
}

// tryNeighbourEviction implements T3. A victim within forward
// short-jump range is evicted; its space hosts two overlapping jumps
// J_victim (to the victim's evictee trampoline) and J_patch (to the
// patch trampoline); the patch instruction becomes a short jump to
// J_patch (§3.3, Figure 2).
func (r *Rewriter) tryNeighbourEviction(inst *x86.Inst) bool {
	patchSize, err := r.opts.Template.Size(inst)
	if err != nil {
		return false
	}
	if !r.inText(inst.Addr, 2) || r.anyLocked(inst.Addr, minI(inst.Len, 2)) {
		return false
	}
	idx, ok := r.instAt(inst.Addr)
	if !ok {
		return false
	}

	if inst.Len == 1 {
		// The short jump's rel8 puns the successor's first byte: only
		// one J_patch location is reachable (limitation L2).
		rel8 := r.code[r.off(inst.Addr)+1]
		if rel8 < 1 || rel8 > 127 {
			return false
		}
		jPatchAddr := inst.Addr + 2 + uint64(rel8)
		for i := idx + 1; i < len(r.insts); i++ {
			v := &r.insts[i]
			if v.Addr >= jPatchAddr {
				break
			}
			if v.Addr+uint64(v.Len) <= jPatchAddr {
				continue
			}
			j := int(jPatchAddr - v.Addr)
			if j < 1 || j > v.Len-1 || v.Addr < inst.Addr+2 {
				return false
			}
			return r.tryT3Victim(inst, v, j, patchSize, true)
		}
		return false
	}

	// General case: any byte position (except the first) of any
	// unlocked victim within +127 of the short jump.
	maxAddr := inst.Addr + 2 + 127
	for i := idx + 1; i < len(r.insts); i++ {
		v := &r.insts[i]
		if v.Addr+1 > maxAddr {
			break
		}
		if v.Len < 2 || !r.inText(v.Addr, v.Len) || r.anyLocked(v.Addr, v.Len) {
			continue
		}
		for j := v.Len - 1; j >= 1; j-- {
			jPatchAddr := v.Addr + uint64(j)
			rel := int64(jPatchAddr) - int64(inst.Addr) - 2
			if rel < 1 || rel > 127 {
				continue
			}
			if r.tryT3Victim(inst, v, j, patchSize, false) {
				return true
			}
		}
	}
	return false
}

// tryT3Victim attempts neighbour eviction with a specific victim v and
// J_patch offset j within it.
func (r *Rewriter) tryT3Victim(inst, v *x86.Inst, j, patchSize int, punnedRel8 bool) bool {
	if r.anyLocked(v.Addr, v.Len) {
		return false
	}
	evSize, err := r.opts.EvictionTemplate.Size(v)
	if err != nil {
		return false
	}
	jPatchAddr := v.Addr + uint64(j)

	// Step (a): J_patch — a punned jump written inside the victim.
	// Its modifiable region is the victim's tail [j, len); fixed bytes
	// come from whatever follows the victim.
	wP, ok := r.computeWindow(r.code, jPatchAddr, v.Len-j, 0)
	if !ok {
		return false
	}
	tP, pCode, fromArena, ok := r.allocTrampoline(r.opts.Template, inst, patchSize, wP)
	if !ok {
		return false
	}
	jP := jumpBytes(r.code, r.off(jPatchAddr), jPatchAddr, v.Len-j, wP, tP)

	// Overlay J_patch so J_victim's window sees its bytes.
	oP := r.off(jPatchAddr)
	writeLenP := minI(v.Len-j, wP.jumpLen)
	saved := make([]byte, writeLenP)
	copy(saved, r.code[oP:oP+writeLenP])
	copy(r.code[oP:oP+writeLenP], jP[:writeLenP])

	// Step (c): J_victim — a punned jump at the victim's first byte;
	// its modifiable region is [0, j) (J_patch bytes are now fixed).
	wV, okV := r.computeWindow(r.code, v.Addr, j, 0)
	var tV uint64
	var evCode []byte
	if okV {
		tV, evCode, _, okV = r.allocTrampoline(r.opts.EvictionTemplate, v, evSize, wV)
	}
	if !okV {
		copy(r.code[oP:oP+writeLenP], saved)
		r.undoTrampoline(tP, patchSize, fromArena)
		return false
	}

	// Commit all three jumps.
	r.commitJump(jPatchAddr, v.Len-j, wP, jP)
	jV := jumpBytes(r.code, r.off(v.Addr), v.Addr, j, wV, tV)
	r.commitJump(v.Addr, j, wV, jV)

	// Step (b): the short jump replacing the patch instruction.
	if punnedRel8 {
		// rel8 is the successor's punned first byte: write only the
		// opcode and lock both.
		r.writeCode(inst.Addr, []byte{0xEB})
	} else {
		r.writeCode(inst.Addr, []byte{0xEB, byte(jPatchAddr - inst.Addr - 2)})
	}
	r.lock(inst.Addr, 2)

	r.addTrampoline(
		Trampoline{Addr: tP, Code: pCode, ForAddr: inst.Addr},
		Trampoline{Addr: tV, Code: evCode, ForAddr: v.Addr, Evictee: true},
	)
	return true
}
