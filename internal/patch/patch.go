// Package patch implements E9Patch's control-flow-agnostic rewriting
// core: the baseline methodologies B0 (int3), B1 (direct jump) and B2
// (instruction punning), the coverage-boosting tactics T1 (padded
// jumps), T2 (successor eviction) and T3 (neighbour eviction), and the
// reverse-order patching strategy S1 with its per-byte lock state.
//
// The rewriter mutates a copy of the text section strictly in place;
// trampolines are allocated in the binary's virtual address space and
// their code is emitted by trampoline templates. No control-flow
// information is consumed: every decision depends only on instruction
// locations/sizes, raw byte values and address-space geometry.
package patch

import (
	"fmt"
	"sort"

	"e9patch/internal/plan"
	"e9patch/internal/trampoline"
	"e9patch/internal/va"
	"e9patch/internal/work"
	"e9patch/internal/x86"
)

// Tactic identifies which patching methodology succeeded for a
// location.
type Tactic uint8

// Tactics in escalation order.
const (
	// TacticNone marks an unpatched location.
	TacticNone Tactic = iota
	// TacticB1 is a direct 5-byte jump (instruction length >= 5).
	TacticB1
	// TacticB2 is baseline instruction punning (unpadded).
	TacticB2
	// TacticT1 is a padded punned jump.
	TacticT1
	// TacticT2 is successor eviction followed by re-punning.
	TacticT2
	// TacticT3 is neighbour eviction with a short-jump double jump.
	TacticT3
	// TacticB0 is the int3/signal-handler fallback.
	TacticB0

	numTactics
)

var tacticNames = [...]string{"none", "B1", "B2", "T1", "T2", "T3", "B0"}

func (t Tactic) String() string {
	if int(t) < len(tacticNames) {
		return tacticNames[t]
	}
	return fmt.Sprintf("tactic(%d)", uint8(t))
}

// TacticFromName is the inverse of Tactic.String, used when replaying
// a serialized plan.
func TacticFromName(name string) (Tactic, bool) {
	for i, n := range tacticNames {
		if n == name {
			return Tactic(i), true
		}
	}
	return TacticNone, false
}

// Options configures the rewriter.
type Options struct {
	// Template builds patch trampolines. Defaults to the empty
	// instrumentation.
	Template trampoline.Template
	// EvictionTemplate builds evictee trampolines for T2/T3 victims.
	// Defaults to the empty instrumentation (the paper's definition of
	// an evictee trampoline).
	EvictionTemplate trampoline.Template
	// DisableT1/T2/T3 turn individual tactics off (ablations).
	DisableT1 bool
	DisableT2 bool
	DisableT3 bool
	// B0Fallback patches locations all tactics failed on with int3,
	// relying on a SIGTRAP dispatcher at run time.
	B0Fallback bool
	// ForceB0 patches every location with int3 (the §2.1.1 baseline),
	// bypassing all jump-based tactics.
	ForceB0 bool
	// T2Candidates bounds the evictee placements probed by guided
	// successor eviction (default 6).
	T2Candidates int
	// TrampolineAlign aligns trampoline starts (default 1; punned
	// windows cannot afford alignment, so this applies only to
	// unconstrained allocations).
	TrampolineAlign uint64
	// Cancel, when non-nil, makes PatchAll stop between locations once
	// the channel is closed (typically a context's Done channel).
	// Remaining locations are left unpatched; the caller is expected
	// to notice the cancellation and discard the partial result.
	Cancel <-chan struct{}
	// Workers is the maximum number of regions patched concurrently
	// (<=1: sequential). The patched output is byte-identical for every
	// value — see parallel.go; Workers only changes scheduling.
	Workers int
	// Pool, when non-nil, bounds helper goroutines globally so that
	// concurrent rewrites sharing the pool cannot oversubscribe the
	// machine. Without a pool each PatchAll may use up to Workers
	// goroutines of its own.
	Pool *work.Pool
	// MinRegionSize is the minimum number of patch locations per
	// parallel region (default 64). It shapes the deterministic region
	// decomposition, so changing it changes the output; Workers does
	// not.
	MinRegionSize int
	// TrampolineBudget, when > 0, bounds the total bytes of emitted
	// trampoline code. Once exceeded the rewriter stops patching and
	// reports LimitExceeded; the caller fails the rewrite with a typed
	// resource-limit error instead of letting a hostile selection
	// allocate without bound.
	TrampolineBudget int64
	// SkipPlan disables the per-location plan record (Sites returns
	// nil). Consumers that materialize directly from the live rewriter —
	// the streaming session — never read the record, and on
	// browser-class inputs the duplicated write and trampoline bytes it
	// holds are a significant fraction of peak memory.
	SkipPlan bool
}

// Trampoline is one emitted trampoline.
type Trampoline struct {
	// Addr is the trampoline's virtual address.
	Addr uint64
	// Code is the emitted machine code.
	Code []byte
	// ForAddr is the patched or evicted instruction's address.
	ForAddr uint64
	// Evictee reports whether this trampoline replaces an evicted
	// victim rather than implementing a patch.
	Evictee bool
}

// LocResult records the outcome for one patch location.
type LocResult struct {
	// Addr is the patch instruction's address.
	Addr uint64
	// Tactic is the methodology that succeeded (TacticNone if all
	// failed and no B0 fallback was requested).
	Tactic Tactic
}

// Stats aggregates patching outcomes, mirroring Table 1's columns.
type Stats struct {
	// Total is the number of patch locations attempted.
	Total int
	// ByTactic counts successes per tactic.
	ByTactic [numTactics]int
	// Failed counts locations no tactic could patch.
	Failed int
}

// Patched returns the total number of successfully patched locations.
func (s *Stats) Patched() int { return s.Total - s.Failed }

// Percent returns 100*n/Total (0 when empty).
func (s *Stats) Percent(n int) float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Total)
}

// BasePercent returns the Table 1 "Base%" column (B1+B2).
func (s *Stats) BasePercent() float64 {
	return s.Percent(s.ByTactic[TacticB1] + s.ByTactic[TacticB2])
}

// SuccPercent returns the Table 1 "Succ%" column.
func (s *Stats) SuccPercent() float64 { return s.Percent(s.Patched()) }

// Rewriter patches one text section.
type Rewriter struct {
	code     []byte
	textAddr uint64
	insts    []x86.Inst
	locked   []bool
	space    *va.Space
	opts     Options

	trampolines []Trampoline
	results     []LocResult
	sigTab      map[uint64]uint64 // B0: int3 address -> trampoline
	stats       Stats

	// sites is the plan record: one entry per patch location, holding
	// every committed effect (emit.go). cur is the entry being built
	// for the location currently inside patchOne.
	sites []plan.Site
	cur   *plan.Site

	// hint is the bump cursor for unconstrained allocations.
	hint uint64

	// trampBytes sums emitted trampoline code bytes; limited flips once
	// Options.TrampolineBudget is exceeded and stops further patching.
	trampBytes int64
	limited    bool

	// Region-parallel state (parallel.go). arena, when non-nil, serves
	// unconstrained allocations from a pre-reserved range; speculating
	// journals space operations for deterministic replay; redone counts
	// regions that conflicted at commit and were re-patched.
	arena       *arena
	speculating bool
	journal     []spaceOp
	redone      int
}

// New creates a rewriter over a mutable copy of code. The space must
// already contain reservations for every loaded segment of the binary
// (and anything else trampolines may not overlap). poolHint seeds the
// preferred region for unconstrained trampoline allocation (typically
// just above the binary's highest loaded address).
func New(code []byte, textAddr uint64, insts []x86.Inst, space *va.Space, poolHint uint64, opts Options) *Rewriter {
	if opts.Template == nil {
		opts.Template = trampoline.Empty{}
	}
	if opts.EvictionTemplate == nil {
		opts.EvictionTemplate = trampoline.Empty{}
	}
	if opts.T2Candidates == 0 {
		opts.T2Candidates = 6
	}
	mutable := make([]byte, len(code))
	copy(mutable, code)
	return &Rewriter{
		code:     mutable,
		textAddr: textAddr,
		insts:    insts,
		locked:   make([]bool, len(code)),
		space:    space,
		opts:     opts,
		sigTab:   make(map[uint64]uint64),
		hint:     poolHint,
	}
}

// Code returns the (patched) text bytes.
func (r *Rewriter) Code() []byte { return r.code }

// Trampolines returns all emitted trampolines.
func (r *Rewriter) Trampolines() []Trampoline { return r.trampolines }

// Results returns per-location outcomes in patch order.
func (r *Rewriter) Results() []LocResult { return r.results }

// SigTab returns the B0 dispatch table (int3 address -> trampoline).
func (r *Rewriter) SigTab() map[uint64]uint64 { return r.sigTab }

// Sites returns the recorded per-location plan entries in patch order;
// flattened, their trampolines equal Trampolines() exactly.
func (r *Rewriter) Sites() []plan.Site { return r.sites }

// Stats returns aggregate patching statistics.
func (r *Rewriter) Stats() Stats { return r.stats }

// LimitExceeded reports whether patching stopped because the
// trampoline byte budget ran out; the partial result must be
// discarded.
func (r *Rewriter) LimitExceeded() bool { return r.limited }

// off converts a text virtual address to a byte offset.
func (r *Rewriter) off(addr uint64) int { return int(addr - r.textAddr) }

// instAt returns the index of the instruction starting exactly at addr.
// The linear disassembly is address-ascending, so a binary search
// serves exact-address lookups without the map[uint64]int it replaced —
// on browser-class inputs that map cost ~40 bytes of heap per
// instruction (a gigabyte at 25M instructions) for two lookup sites.
func (r *Rewriter) instAt(addr uint64) (int, bool) {
	i := sort.Search(len(r.insts), func(i int) bool { return r.insts[i].Addr >= addr })
	if i < len(r.insts) && r.insts[i].Addr == addr {
		return i, true
	}
	return 0, false
}

// inText reports whether [addr, addr+n) lies inside the text section.
func (r *Rewriter) inText(addr uint64, n int) bool {
	o := int64(addr) - int64(r.textAddr)
	return o >= 0 && o+int64(n) <= int64(len(r.code))
}

// anyLocked reports whether any byte of [addr, addr+n) is locked.
func (r *Rewriter) anyLocked(addr uint64, n int) bool {
	o := r.off(addr)
	for i := 0; i < n; i++ {
		if r.locked[o+i] {
			return true
		}
	}
	return false
}

// lock marks [addr, addr+n) locked (modified or punned bytes).
func (r *Rewriter) lock(addr uint64, n int) {
	o := r.off(addr)
	for i := 0; i < n; i++ {
		r.locked[o+i] = true
	}
}

// PatchAll applies the reverse-order strategy S1: locations are patched
// from highest to lowest address so that puns only ever depend on bytes
// that are already final.
// When the order decomposes into more than one guard-band-separated
// region, the regions are patched speculatively in parallel and
// committed deterministically (parallel.go); otherwise the classic
// sequential path runs. The path taken depends only on the workload,
// never on Options.Workers, so output bytes are identical for every
// worker count.
func (r *Rewriter) PatchAll(indices []int) Stats {
	order := make([]int, len(indices))
	copy(order, indices)
	sort.Slice(order, func(a, b int) bool {
		return r.insts[order[a]].Addr > r.insts[order[b]].Addr
	})
	if regions := r.decompose(order); len(regions) > 1 {
		r.patchRegions(regions)
		return r.stats
	}
	r.runRegion(order)
	return r.stats
}

// patchOne escalates through the tactics for a single location. The
// tactic functions decide; their committed effects are recorded into
// the site's plan entry by the emit half (emit.go).
func (r *Rewriter) patchOne(idx int) {
	inst := &r.insts[idx]
	r.stats.Total++
	r.beginSite(inst.Addr)

	tactic := TacticNone
	switch {
	case r.opts.ForceB0:
		if r.tryInt3(inst) {
			tactic = TacticB0
		}
	case r.tryPunnedJump(inst):
		if inst.Len >= 5 {
			tactic = TacticB1
		} else {
			tactic = TacticB2
		}
	case !r.opts.DisableT1 && r.tryPaddedJump(inst):
		tactic = TacticT1
	case !r.opts.DisableT2 && r.trySuccessorEviction(inst):
		tactic = TacticT2
	case !r.opts.DisableT3 && r.tryNeighbourEviction(inst):
		tactic = TacticT3
	case r.opts.B0Fallback && r.tryInt3(inst):
		tactic = TacticB0
	}

	if tactic == TacticNone {
		r.stats.Failed++
	} else {
		r.stats.ByTactic[tactic]++
	}
	r.endSite(tactic)
	r.results = append(r.results, LocResult{Addr: inst.Addr, Tactic: tactic})
}
