package patch

import (
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/va"
	"e9patch/internal/x86"
)

// buildHostile assembles a program dense with hard-to-patch shapes:
// short jumps and small stores followed by MSB-set bytes.
func buildHostile(a *x86.Asm) {
	for i := 0; i < 60; i++ {
		skip := a.NewLabel()
		a.JccShort(x86.Cond(i%16), skip)          // 2-byte patch target
		a.Raw(0x81, 0xC3, 0x88, 0x99, 0xAA, 0xBB) // hostile bytes
		a.Bind(skip)
		a.MovMemReg64(x86.M(x86.RBX, int32(i%120)), x86.RAX) // small store
		a.Raw(0x81, 0xC1, 0x90, 0xA0, 0xB0, 0xC0)            // hostile bytes
		a.XorRegReg64(x86.RCX, x86.RAX)
		a.CmpMemImm8(x86.M(x86.RBX, -4), 77)
	}
	a.Ret()
}

func coverageWith(t *testing.T, opts Options) Stats {
	t.Helper()
	a := x86.NewAsm(testTextAddr)
	buildHostile(a)
	code := a.MustFinish()
	res := disasm.Linear(code, testTextAddr)
	space := va.NewDefault()
	loadEnd := (testTextAddr + uint64(len(code)) + 0xFFF) &^ 0xFFF
	if err := space.Reserve(0x400000, loadEnd+0x2000); err != nil {
		t.Fatal(err)
	}
	r := New(code, testTextAddr, res.Insts, space, loadEnd+0x2000, opts)
	sel := append(disasm.SelectJumps(res.Insts), disasm.SelectHeapWrites(res.Insts)...)
	return r.PatchAll(sel)
}

// TestTacticAblationMonotonicity: each enabled tactic can only improve
// coverage, and the full set beats every ablated set.
func TestTacticAblationMonotonicity(t *testing.T) {
	full := coverageWith(t, Options{})
	noT1 := coverageWith(t, Options{DisableT1: true})
	noT2 := coverageWith(t, Options{DisableT2: true})
	noT3 := coverageWith(t, Options{DisableT3: true})
	baseOnly := coverageWith(t, Options{DisableT1: true, DisableT2: true, DisableT3: true})

	// Tactics interfere (limitation L3): an early tactic success can
	// lock bytes or consume victims a later location needed, so strict
	// per-program monotonicity does not hold. The full configuration
	// must still be within noise of the best ablation.
	best := noT1.SuccPercent()
	if v := noT2.SuccPercent(); v > best {
		best = v
	}
	if v := noT3.SuccPercent(); v > best {
		best = v
	}
	if full.SuccPercent() < best-1.5 {
		t.Errorf("full tactics (%.2f) far below best ablation (%.2f)",
			full.SuccPercent(), best)
	}
	if baseOnly.SuccPercent() >= full.SuccPercent() {
		t.Errorf("baseline-only (%.2f) not below full (%.2f) on hostile input",
			baseOnly.SuccPercent(), full.SuccPercent())
	}
	// On this hostile input the baseline must fail a large share,
	// and T2/T3 must be doing real work in the full configuration.
	if baseOnly.BasePercent() > 80 {
		t.Errorf("hostile input not hostile enough: base %.2f", baseOnly.BasePercent())
	}
	if full.ByTactic[TacticT2]+full.ByTactic[TacticT3] == 0 {
		t.Error("eviction tactics never used on hostile input")
	}
}

// TestForceB0PatchesEverything: the §2.1.1 baseline covers 100% by
// construction (every first byte is writable).
func TestForceB0PatchesEverything(t *testing.T) {
	stats := coverageWith(t, Options{ForceB0: true, B0Fallback: true})
	if stats.SuccPercent() != 100 {
		t.Errorf("ForceB0 coverage %.2f", stats.SuccPercent())
	}
	if stats.ByTactic[TacticB0] != stats.Total {
		t.Errorf("not everything went through B0: %+v", stats)
	}
}

// TestLockStateInvariant: after patching, every byte that any punned
// jump depends on must be locked, and no failed location may have
// modified bytes.
func TestLockStateInvariant(t *testing.T) {
	a := x86.NewAsm(testTextAddr)
	buildHostile(a)
	code := a.MustFinish()
	orig := append([]byte(nil), code...)
	res := disasm.Linear(code, testTextAddr)
	space := va.NewDefault()
	loadEnd := (testTextAddr + uint64(len(code)) + 0xFFF) &^ 0xFFF
	if err := space.Reserve(0x400000, loadEnd+0x2000); err != nil {
		t.Fatal(err)
	}
	r := New(code, testTextAddr, res.Insts, space, loadEnd+0x2000, Options{})
	sel := disasm.SelectJumps(res.Insts)
	r.PatchAll(sel)

	for _, lr := range r.Results() {
		o := int(lr.Addr - testTextAddr)
		if lr.Tactic == TacticNone {
			// Failed locations: first byte unchanged.
			if r.code[o] != orig[o] {
				t.Errorf("failed location %#x modified", lr.Addr)
			}
			continue
		}
		// Patched locations: first byte locked and changed to a jump
		// or prefix byte.
		if !r.locked[o] {
			t.Errorf("patched location %#x first byte not locked", lr.Addr)
		}
	}
	// Every modified byte must be locked.
	for i := range r.code {
		if r.code[i] != orig[i] && !r.locked[i] {
			t.Errorf("modified byte at +%#x not locked", i)
		}
	}
}
