package patch

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"e9patch/internal/disasm"
	"e9patch/internal/va"
	"e9patch/internal/x86"
)

// fatTemplate emits size deterministic filler bytes; big trampolines
// make independently chosen placements collide, which is exactly what
// the conflict tests need.
type fatTemplate struct{ size int }

func (f fatTemplate) Size(*x86.Inst) (int, error) { return f.size, nil }

func (f fatTemplate) Emit(inst *x86.Inst, at uint64) ([]byte, error) {
	out := make([]byte, f.size)
	for i := range out {
		out[i] = byte(at + uint64(i))
	}
	return out, nil
}

// clusteredProgram assembles nblocks jump-heavy blocks separated by
// NOP sleds wider than the guard band, producing a multi-cluster
// workload.
func clusteredProgram(nblocks, sled int) func(a *x86.Asm) {
	return func(a *x86.Asm) {
		for b := 0; b < nblocks; b++ {
			out := a.NewLabel()
			for i := 0; i < 3; i++ {
				skip := a.NewLabel()
				a.AddRegImm64(x86.RAX, int32(b*8+i))
				a.Jcc(x86.CondE, skip)
				a.MovMemReg64(x86.M(x86.RBX, int32(i*8)), x86.RAX)
				a.Bind(skip)
				a.Jcc(x86.CondL, out)
			}
			a.Bind(out)
			for i := 0; i < sled; i++ {
				a.Nop()
			}
		}
		a.Ret()
	}
}

// descending returns sel sorted by address high-to-low, the order
// decompose expects.
func descending(insts []x86.Inst, sel []int) []int {
	order := append([]int(nil), sel...)
	sort.Slice(order, func(a, b int) bool {
		return insts[order[a]].Addr > insts[order[b]].Addr
	})
	return order
}

func TestDecomposeGuardBandClusters(t *testing.T) {
	opts := Options{MinRegionSize: 1}
	r, insts := newTestRewriter(t, clusteredProgram(5, 300), opts)
	sel := disasm.SelectJumps(insts)
	if len(sel) < 20 {
		t.Fatalf("only %d jumps selected", len(sel))
	}
	order := descending(insts, sel)
	regions := r.decompose(order)
	if len(regions) < 2 {
		t.Fatalf("expected a multi-region decomposition, got %d region(s)", len(regions))
	}
	// Concatenating the regions must reproduce the order exactly.
	var flat []int
	for _, reg := range regions {
		flat = append(flat, reg...)
	}
	if !reflect.DeepEqual(flat, order) {
		t.Fatal("regions do not concatenate to the patch order")
	}
	// Adjacent regions must be separated by at least the guard band.
	for i := 1; i < len(regions); i++ {
		loPrev := insts[regions[i-1][len(regions[i-1])-1]].Addr
		hiNext := insts[regions[i][0]].Addr
		if loPrev-hiNext < guardBand {
			t.Fatalf("region %d..%d gap %d < guard band", i-1, i, loPrev-hiNext)
		}
	}
	// The decomposition ignores Workers entirely.
	r.opts.Workers = 7
	if !reflect.DeepEqual(r.decompose(order), regions) {
		t.Fatal("decomposition depends on Workers")
	}
	// Without a forced MinRegionSize this workload is too small to
	// split at all.
	r.opts.MinRegionSize = 0
	if got := r.decompose(order); len(got) != 1 {
		t.Fatalf("default MinRegionSize split %d locations into %d regions", len(order), len(got))
	}
}

// patchClustered patches the clustered program with the given worker
// count and returns the rewriter.
func patchClustered(t *testing.T, workers int) *Rewriter {
	t.Helper()
	opts := Options{MinRegionSize: 2, Workers: workers}
	r, insts := newTestRewriter(t, clusteredProgram(6, 320), opts)
	r.PatchAll(disasm.SelectJumps(insts))
	return r
}

// assertSameRewrite fails unless the two rewriters produced identical
// observable output.
func assertSameRewrite(t *testing.T, want, got *Rewriter, label string) {
	t.Helper()
	if !bytes.Equal(want.Code(), got.Code()) {
		t.Errorf("%s: patched text bytes differ", label)
	}
	if !reflect.DeepEqual(want.Trampolines(), got.Trampolines()) {
		t.Errorf("%s: trampolines differ", label)
	}
	if !reflect.DeepEqual(want.Results(), got.Results()) {
		t.Errorf("%s: per-location results differ", label)
	}
	if want.Stats() != got.Stats() {
		t.Errorf("%s: stats differ: %+v vs %+v", label, want.Stats(), got.Stats())
	}
	if !reflect.DeepEqual(want.SigTab(), got.SigTab()) {
		t.Errorf("%s: sigtab differs", label)
	}
}

func TestParallelPatchIdenticalAcrossWorkers(t *testing.T) {
	base := patchClustered(t, 1)
	if st := base.Stats(); st.Patched() == 0 {
		t.Fatal("nothing patched")
	}
	for _, workers := range []int{0, 2, 8} {
		assertSameRewrite(t, base, patchClustered(t, workers), "workers="+string(rune('0'+workers)))
	}
}

func TestRegionConflictRedo(t *testing.T) {
	// Two Figure-1 sites whose only T1 window is the exact address
	// rel32=0x20c08348 away; with 300-byte trampolines and the sites
	// 295 bytes apart the two speculative reservations overlap, so the
	// lower region must conflict at commit and be redone — at every
	// worker count, producing identical bytes.
	build := func(a *x86.Asm) {
		figure1(a)
		for i := 0; i < 280; i++ {
			a.Nop()
		}
		figure1(a)
	}
	run := func(workers int) *Rewriter {
		opts := Options{
			Template:      fatTemplate{size: 300},
			MinRegionSize: 1,
			Workers:       workers,
			DisableT2:     true,
			DisableT3:     true,
		}
		r, insts := newTestRewriter(t, build, opts)
		var sel []int
		for i := range insts {
			if insts[i].Addr == testTextAddr || insts[i].Addr == testTextAddr+295 {
				sel = append(sel, i)
			}
		}
		if len(sel) != 2 {
			t.Fatalf("expected 2 patch sites, found %d", len(sel))
		}
		r.PatchAll(sel)
		return r
	}
	seq := run(1)
	par := run(4)
	if seq.redone != 1 || par.redone != 1 {
		t.Fatalf("redone = %d (seq) / %d (par), want 1 — conflict not exercised", seq.redone, par.redone)
	}
	assertSameRewrite(t, seq, par, "conflict redo")
	// The higher site won the overlapping window; the lower site's T1
	// must have failed on the redo (everything else is disabled).
	st := seq.Stats()
	if st.ByTactic[TacticT1] != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want exactly one T1 success and one failure", st)
	}
}

func TestApplyJournalConflictUnwinds(t *testing.T) {
	r, _ := newTestRewriter(t, figure1, Options{})
	before := r.space.Intervals()
	ops := []spaceOp{
		{lo: 0x900000, hi: 0x900100},
		{release: true, lo: 0x900000, hi: 0x900100},
		{lo: 0x900200, hi: 0x900300},
		{lo: 0x400000, hi: 0x400010}, // collides with the load image
	}
	if r.applyJournal(ops) {
		t.Fatal("conflicting journal reported success")
	}
	if !reflect.DeepEqual(r.space.Intervals(), before) {
		t.Fatal("unwind did not restore the space")
	}
	// A clean journal applies fully.
	if !r.applyJournal(ops[:3]) {
		t.Fatal("clean journal rejected")
	}
	if !r.space.Occupied(0x900200, 0x900300) || r.space.Occupied(0x900000, 0x900100) {
		t.Fatal("journal not applied correctly")
	}
}

func TestBeltFallbackSequential(t *testing.T) {
	// A space too small for even one arena forces the sequential
	// fallback; patching must still succeed and stay deterministic.
	build := clusteredProgram(4, 300)
	run := func(workers int) *Rewriter {
		a := x86.NewAsm(testTextAddr)
		build(a)
		code := a.MustFinish()
		res := disasm.Linear(code, testTextAddr)
		space := va.New(0x400000, 0x400000+2<<20)
		loadEnd := (testTextAddr + uint64(len(code)) + 0xFFF) &^ 0xFFF
		if err := space.Reserve(0x400000, loadEnd); err != nil {
			t.Fatal(err)
		}
		r := New(code, testTextAddr, res.Insts, space, loadEnd,
			Options{MinRegionSize: 2, Workers: workers})
		r.PatchAll(disasm.SelectJumps(res.Insts))
		return r
	}
	seq := run(1)
	if st := seq.Stats(); st.Patched() == 0 {
		t.Fatal("nothing patched under belt fallback")
	}
	assertSameRewrite(t, seq, run(8), "belt fallback")
}

func TestArenaUndoRestoresBump(t *testing.T) {
	ar := &arena{base: 0x1000, end: 0x2000, ptr: 0x1000}
	at, ok := ar.peek(0x40, 0, 1<<47)
	if !ok || at != 0x1000 {
		t.Fatalf("peek = %#x, %v", at, ok)
	}
	ar.ptr = at + 0x40
	r := &Rewriter{arena: ar}
	r.undoTrampoline(at, 0x40, true)
	if ar.ptr != 0x1000 {
		t.Fatalf("undo left ptr at %#x", ar.ptr)
	}
	// Out-of-window and out-of-space peeks fail.
	if _, ok := ar.peek(0x40, 0x3000, 1<<47); ok {
		t.Error("peek below window lo succeeded")
	}
	if _, ok := ar.peek(0x2000, 0, 1<<47); ok {
		t.Error("oversized peek succeeded")
	}
}
