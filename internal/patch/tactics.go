package patch

import (
	"e9patch/internal/trampoline"
	"e9patch/internal/x86"
)

// padPrefix returns the i-th redundant jump prefix byte. Index 0 is a
// REX prefix (ignored by jmp rel32); later indices cycle through the
// segment-override prefixes, which are equally meaningless on a
// relative jump (§3.1).
func padPrefix(i int) byte {
	if i == 0 {
		return 0x48
	}
	segs := [...]byte{0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65}
	return segs[(i-1)%len(segs)]
}

// punWindow describes one candidate jump placement: a pad-byte count
// and the contiguous interval of reachable trampoline targets induced
// by the bytes the jump cannot change.
type punWindow struct {
	pad       int    // redundant prefix bytes
	jumpLen   int    // pad + 5
	freeBytes int    // choosable low rel32 bytes
	winLo     uint64 // lowest reachable target (clamped to >= 0)
	winHi     uint64 // highest reachable target
}

// computeWindow derives the pun window for a jump with the given
// padding placed at addr over an instruction of length instLen, reading
// fixed bytes from view (the current code image). It returns ok=false
// when the placement is impossible (out of text, negative-only
// targets, or a locked byte in the modified region).
func (r *Rewriter) computeWindow(view []byte, addr uint64, instLen, pad int) (punWindow, bool) {
	w := punWindow{pad: pad, jumpLen: pad + 5}
	if pad < 0 || pad > instLen-1 {
		return w, false
	}
	w.freeBytes = instLen - pad - 1
	if w.freeBytes > 4 {
		w.freeBytes = 4
	}
	// The jump must fit inside the text image (its punned tail reads
	// successor bytes).
	if !r.inText(addr, maxI(w.jumpLen, instLen)) {
		return w, false
	}
	// Modified bytes [addr, addr+min(instLen, jumpLen)) must be
	// unlocked. (Punned bytes beyond the instruction may be locked:
	// their values are final, which is exactly what a pun needs.)
	if r.anyLocked(addr, minI(instLen, w.jumpLen)) {
		return w, false
	}

	end := addr + uint64(w.jumpLen)
	k := 4 - w.freeBytes
	if k == 0 {
		// Unconstrained: the full rel32 range.
		lo := int64(end) - (1 << 31)
		hi := int64(end) + (1<<31 - 1)
		if hi < 0 {
			return w, false
		}
		if lo < 0 {
			lo = 0
		}
		w.winLo, w.winHi = uint64(lo), uint64(hi)
		return w, true
	}

	// Fixed high bytes come from the bytes following the instruction.
	var fixed uint32
	base := r.off(addr) + pad + 1 + w.freeBytes
	for i := 0; i < k; i++ {
		fixed |= uint32(view[base+i]) << (8 * uint(w.freeBytes+i))
	}
	relLo := int32(fixed)
	span := int64(1) << (8 * uint(w.freeBytes))
	lo := int64(end) + int64(relLo)
	hi := lo + span - 1
	if hi < 0 {
		return w, false // entirely below address zero
	}
	if lo < 0 {
		lo = 0
	}
	w.winLo, w.winHi = uint64(lo), uint64(hi)
	return w, true
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// jumpBytes encodes the (possibly padded, possibly punned) jump placed
// at addr targeting target. Only the first min(instLen, jumpLen) bytes
// are written by the caller; the tail must already hold the punned
// values, which this function asserts.
func jumpBytes(view []byte, off int, addr uint64, instLen int, w punWindow, target uint64) []byte {
	out := make([]byte, w.jumpLen)
	for i := 0; i < w.pad; i++ {
		out[i] = padPrefix(i)
	}
	out[w.pad] = 0xE9
	rel := uint32(int32(int64(target) - int64(addr) - int64(w.jumpLen)))
	for i := 0; i < 4; i++ {
		out[w.pad+1+i] = byte(rel >> (8 * uint(i)))
	}
	// Punned tail bytes must agree with the existing code.
	for i := instLen; i < w.jumpLen; i++ {
		if out[i] != view[off+i] {
			panic("patch: pun mismatch — window computation out of sync")
		}
	}
	return out
}

// allocTrampoline finds space for size bytes inside [winLo, winHi],
// emits the template there and reserves the range. Unconstrained
// windows use the bump hint for dense packing; constrained (punned)
// windows use a deterministic jitter so trampolines spread across
// page offsets — without it every pun lands at its window's lowest
// address and physical page grouping cannot merge anything (§4).
//
// When the rewriter patches one region of a parallel decomposition,
// unconstrained allocations come from the region's pre-reserved arena
// when possible (no address-space traffic at all); the reported
// fromArena lets failure paths undo the bump instead of releasing.
func (r *Rewriter) allocTrampoline(tmpl trampoline.Template, inst *x86.Inst, size int, w punWindow) (t uint64, code []byte, fromArena, ok bool) {
	usize := uint64(size)
	unconstrained := w.freeBytes == 4
	if unconstrained && r.arena != nil {
		if at, aok := r.arena.peek(usize, w.winLo, w.winHi); aok {
			code, err := tmpl.Emit(inst, at)
			if err != nil || len(code) != size {
				return 0, nil, false, false
			}
			r.arena.ptr = at + usize
			return at, code, true, true
		}
		// Arena exhausted or outside this window: fall through to the
		// journaled shared-space path.
	}
	switch {
	case unconstrained:
		if r.hint >= w.winLo && r.hint <= w.winHi {
			t, ok = r.space.FindFree(usize, r.hint, w.winHi)
		}
	case w.winHi > w.winLo+usize:
		span := w.winHi - w.winLo - usize
		jitter := mix64(w.winLo^inst.Addr) % span
		t, ok = r.space.FindFree(usize, w.winLo+jitter, w.winHi)
	}
	if !ok {
		t, ok = r.space.FindFree(usize, w.winLo, w.winHi)
	}
	if !ok {
		return 0, nil, false, false
	}
	emitted, err := tmpl.Emit(inst, t)
	if err != nil || len(emitted) != size {
		return 0, nil, false, false
	}
	if err := r.reserveVA(t, t+usize); err != nil {
		return 0, nil, false, false
	}
	if unconstrained {
		r.hint = t + usize
	}
	return t, emitted, false, true
}

// mix64 is a splitmix64-style hash for deterministic placement jitter.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// tryJumpPad attempts a single pun placement (one padding value) for
// the patch instruction, allocating its trampoline on success.
func (r *Rewriter) tryJumpPad(inst *x86.Inst, pad int, tmpl trampoline.Template, evictee bool) bool {
	size, err := tmpl.Size(inst)
	if err != nil {
		return false
	}
	w, ok := r.computeWindow(r.code, inst.Addr, inst.Len, pad)
	if !ok {
		return false
	}
	t, code, _, ok := r.allocTrampoline(tmpl, inst, size, w)
	if !ok {
		return false
	}
	jmp := jumpBytes(r.code, r.off(inst.Addr), inst.Addr, inst.Len, w, t)
	r.commitJump(inst.Addr, inst.Len, w, jmp)
	r.notePad(w.pad)
	r.addTrampoline(Trampoline{
		Addr: t, Code: code, ForAddr: inst.Addr, Evictee: evictee,
	})
	return true
}

// tryPunnedJump implements B1 (instLen >= 5: unconstrained) and B2
// (punned, no padding).
func (r *Rewriter) tryPunnedJump(inst *x86.Inst) bool {
	return r.tryJumpPad(inst, 0, r.opts.Template, false)
}

// tryPaddedJump implements T1: one extra attempt per padding byte.
// Padding cannot help instructions of length >= 5 (the pad-0 window is
// already unconstrained), nor single-byte instructions (no room).
func (r *Rewriter) tryPaddedJump(inst *x86.Inst) bool {
	if inst.Len >= 5 {
		return false
	}
	for pad := 1; pad <= inst.Len-1; pad++ {
		if r.tryJumpPad(inst, pad, r.opts.Template, false) {
			return true
		}
	}
	return false
}

// tryInt3 implements B0: replace the first byte with int3 and register
// the trampoline in the SIGTRAP dispatch table.
func (r *Rewriter) tryInt3(inst *x86.Inst) bool {
	if r.anyLocked(inst.Addr, 1) {
		return false
	}
	size, err := r.opts.Template.Size(inst)
	if err != nil {
		return false
	}
	w := punWindow{freeBytes: 4, winLo: r.space.Min(), winHi: r.space.Max() - 1}
	t, code, _, ok := r.allocTrampoline(r.opts.Template, inst, size, w)
	if !ok {
		return false
	}
	r.writeCode(inst.Addr, []byte{0xCC})
	r.lock(inst.Addr, 1)
	r.addSigTab(inst.Addr, t)
	r.addTrampoline(Trampoline{
		Addr: t, Code: code, ForAddr: inst.Addr,
	})
	return true
}
