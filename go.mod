module e9patch

go 1.22
