package e9patch

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"e9patch/internal/workload"
)

// TestStreamMatchesRewrite is the streaming differential: a session fed
// the whole selection at once, or split across many Select/SelectAddrs
// messages (with overlap), must reproduce the single-shot Rewrite
// byte-for-byte for the paper applications A1 and A2 across the corpus.
func TestStreamMatchesRewrite(t *testing.T) {
	ctx := context.Background()
	for _, be := range planCorpus(t) {
		for _, app := range []struct {
			name string
			sel  Selector
		}{{"A1", SelectJumps}, {"A2", SelectHeapWrites}} {
			label := fmt.Sprintf("%s/%s", be.name, app.name)
			cfg := Config{Select: app.sel, ReserveVA: workload.ReserveVA()}
			want, err := Rewrite(be.bin, cfg)
			if err != nil {
				t.Fatalf("%s: rewrite: %v", label, err)
			}

			// One-shot session: selector in the config.
			s, err := NewStream(ctx, be.bin, cfg)
			if err != nil {
				t.Fatalf("%s: stream: %v", label, err)
			}
			got, err := s.Finish(ctx)
			if err != nil {
				t.Fatalf("%s: finish: %v", label, err)
			}
			if !bytes.Equal(want.Output, got.Output) {
				t.Errorf("%s: one-shot stream output differs from Rewrite", label)
			}
			if want.Stats != got.Stats {
				t.Errorf("%s: stats differ: %+v vs %+v", label, want.Stats, got.Stats)
			}

			// Chunked session: the same locations drip in as address
			// batches, repeated once to exercise dedup.
			scfg := cfg
			scfg.Select = nil
			s2, err := NewStream(ctx, be.bin, scfg)
			if err != nil {
				t.Fatalf("%s: stream2: %v", label, err)
			}
			var addrs []uint64
			for _, loc := range want.Locations {
				addrs = append(addrs, loc.Addr)
			}
			const chunk = 7
			for lo := 0; lo < len(addrs); lo += chunk {
				hi := lo + chunk
				if hi > len(addrs) {
					hi = len(addrs)
				}
				if _, err := s2.SelectAddrs(addrs[lo:hi]...); err != nil {
					t.Fatalf("%s: select addrs: %v", label, err)
				}
			}
			if _, err := s2.SelectAddrs(addrs...); err != nil { // full repeat: all dups
				t.Fatalf("%s: duplicate select: %v", label, err)
			}
			if s2.Selected() != len(addrs) {
				t.Fatalf("%s: dedup failed: %d selected, want %d", label, s2.Selected(), len(addrs))
			}
			got2, err := s2.Finish(ctx)
			if err != nil {
				t.Fatalf("%s: finish2: %v", label, err)
			}
			if !bytes.Equal(want.Output, got2.Output) {
				t.Errorf("%s: chunked stream output differs from Rewrite", label)
			}
		}
	}
}

// TestStreamInputUntouched proves the zero-copy discipline: a full
// streaming rewrite never writes to the input slice, so a read-only
// mmap view is safe to pass.
func TestStreamInputUntouched(t *testing.T) {
	ctx := context.Background()
	bin := planCorpus(t)[0].bin
	orig := append([]byte(nil), bin...)
	s, err := NewStream(ctx, bin, Config{Select: SelectAll, ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, bin) {
		t.Fatal("streaming rewrite mutated the input slice")
	}
}

// TestStreamSessionGuards covers misuse: use after Finish and nil
// selectors are classified errors, never panics.
func TestStreamSessionGuards(t *testing.T) {
	ctx := context.Background()
	bin := planCorpus(t)[0].bin
	s, err := NewStream(ctx, bin, Config{ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select(nil); err == nil {
		t.Fatal("nil selector: want error")
	}
	if _, err := s.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectAddrs(0x401000); err == nil {
		t.Fatal("select after finish: want error")
	}
	if _, err := s.Finish(ctx); err == nil {
		t.Fatal("double finish: want error")
	}
}

// TestStreamSiteLimit checks the incremental patch-site cap: the
// message that crosses the limit fails, not the emit at the end.
func TestStreamSiteLimit(t *testing.T) {
	ctx := context.Background()
	bin := planCorpus(t)[0].bin
	cfg := Config{ReserveVA: workload.ReserveVA()}
	cfg.Limits.MaxPatchSites = 3
	s, err := NewStream(ctx, bin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select(SelectAll); err == nil {
		t.Fatal("selection beyond MaxPatchSites: want error")
	}
}
