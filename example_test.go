package e9patch_test

import (
	"fmt"
	"log"

	"e9patch"
	"e9patch/internal/workload"
)

// ExampleRewrite instruments every heap-write instruction of a binary
// with the empty instrumentation and reports the tactic coverage.
func ExampleRewrite() {
	prog, err := workload.BuildKernel("memstream", false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e9patch.Rewrite(prog.ELF, e9patch.Config{
		Select:    e9patch.SelectHeapWrites,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage %.0f%%, every byte of the original preserved or patched in place\n",
		res.Stats.SuccPercent())
	// Output: coverage 100%, every byte of the original preserved or patched in place
}

// ExampleSelectMatch selects patch points with an E9Tool-style
// expression instead of a hand-written selector.
func ExampleSelectMatch() {
	sel, err := e9patch.SelectMatch("jcc & short")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e9patch.Rewrite(prog.ELF, e9patch.Config{
		Select:    sel,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d short conditional jumps\n", res.Stats.Total)
	// Output: matched 1 short conditional jumps
}

// ExampleLoad runs a rewritten binary in the bundled emulator.
func ExampleLoad() {
	prog, err := workload.BuildKernel("pointer", false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e9patch.Rewrite(prog.ELF, e9patch.Config{
		Select:    e9patch.SelectJumps,
		ReserveVA: workload.ReserveVA(),
	})
	if err != nil {
		log.Fatal(err)
	}
	m := workload.NewMachine(nil)
	entry, err := e9patch.Load(m, res.Output)
	if err != nil {
		log.Fatal(err)
	}
	m.RIP = entry
	if err := m.Run(500_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("halted after emitting %d output value(s)\n", len(m.Output))
	// Output: halted after emitting 1 output value(s)
}
