package e9patch

import (
	"testing"

	"e9patch/internal/workload"
)

// TestSelectMatchDifferential drives the matcher-based selection
// through the full pipeline: several expressions, each rewritten and
// executed differentially.
func TestSelectMatchDifferential(t *testing.T) {
	prog, err := workload.BuildKernel("branchy", false)
	if err != nil {
		t.Fatal(err)
	}
	orig := runBinary(t, prog.ELF, nil)

	for _, expr := range []string{
		"jump | jcc",
		"heapwrite",
		"jcc & short",
		"mnemonic=mov & memwrite",
		"call | ret",
		"len>=5 & branch",
	} {
		sel, err := SelectMatch(expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		res, err := Rewrite(prog.ELF, Config{
			Select:    sel,
			ReserveVA: workload.ReserveVA(),
		})
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		patched := runBinary(t, res.Output, nil)
		if patched.Output[0] != orig.Output[0] {
			t.Fatalf("%q: behaviour diverged", expr)
		}
		t.Logf("%-28q matched %5d, patched %.1f%%", expr, res.Stats.Total, res.Stats.SuccPercent())
	}

	// Equivalence with the built-in selectors.
	a1, _ := SelectMatch("jump | jcc")
	r1, err := Rewrite(prog.ELF, Config{Select: a1, ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Rewrite(prog.ELF, Config{Select: SelectJumps, ReserveVA: workload.ReserveVA()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Total != r2.Stats.Total {
		t.Errorf("matcher A1 (%d) != built-in A1 (%d)", r1.Stats.Total, r2.Stats.Total)
	}

	if _, err := SelectMatch("jcc &"); err == nil {
		t.Error("bad expression accepted")
	}
}
